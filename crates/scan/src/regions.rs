//! Candidate region enumeration.
//!
//! The paper scans a *predetermined set of regions* `R` (§3). This
//! module provides the sets used in the evaluation plus extensions:
//!
//! * the partitions of a regular grid (§4.2: `100×50`, `25×12`,
//!   `20×20`);
//! * the partitions of one or many random rectangular partitionings
//!   (§4.2's `MeanVar`-compatible setting: 100 partitionings with
//!   10–40 splits per axis);
//! * square regions of several side lengths centered on k-means
//!   centers of the observation locations (§4.3: 20 sides from 0.1 to
//!   2.0 degrees × 100 centers = 2,000 squares);
//! * circles around the same centers (extension).

use rand::Rng;
use serde::{Deserialize, Serialize};
use sfgeo::{Circle, Partitioning, Point, RandomPartitioningConfig, Rect, Region, UniformGrid};
use sfgeo::{KMeans, KMeansConfig};

/// A set of candidate scan regions, with optional structure metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSet {
    regions: Vec<Region>,
    /// For square/circle scans: the index of the center each region is
    /// built around (drives the §4.3 non-overlapping selection).
    center_ids: Option<Vec<usize>>,
    /// The scan centers themselves, when applicable.
    centers: Option<Vec<Point>>,
    /// Human-readable description of how the set was built.
    description: String,
}

impl RegionSet {
    /// Wraps an explicit list of regions.
    pub fn from_regions(regions: Vec<Region>) -> Self {
        RegionSet {
            description: format!("{} explicit regions", regions.len()),
            regions,
            center_ids: None,
            centers: None,
        }
    }

    /// The partitions of a regular `nx × ny` grid over `bounds`.
    pub fn regular_grid(bounds: Rect, nx: usize, ny: usize) -> Self {
        let grid = UniformGrid::new(bounds, nx, ny);
        let regions = grid.iter_cells().map(|(_, r)| Region::Rect(r)).collect();
        RegionSet {
            regions,
            center_ids: None,
            centers: None,
            description: format!("{nx}x{ny} regular grid partitions"),
        }
    }

    /// The partitions of one partitioning.
    pub fn from_partitioning(p: &Partitioning) -> Self {
        let regions = p.iter_partitions().map(|(_, r)| Region::Rect(r)).collect();
        RegionSet {
            regions,
            center_ids: None,
            centers: None,
            description: format!("partitioning with {}x{} partitions", p.ncols(), p.nrows()),
        }
    }

    /// The union of the partitions of many partitionings (the §4.2
    /// `MeanVar`-compatible setting: "we restrict our methodology to
    /// only audit for fairness the partitions that belong to the
    /// partitionings").
    pub fn from_partitionings(ps: &[Partitioning]) -> Self {
        let mut regions = Vec::new();
        for p in ps {
            regions.extend(p.iter_partitions().map(|(_, r)| Region::Rect(r)));
        }
        RegionSet {
            description: format!(
                "{} partitions from {} partitionings",
                regions.len(),
                ps.len()
            ),
            regions,
            center_ids: None,
            centers: None,
        }
    }

    /// `count` random partitionings drawn per the paper's §4.2 setup.
    pub fn random_partitionings<R: Rng + ?Sized>(
        bounds: Rect,
        count: usize,
        config: &RandomPartitioningConfig,
        rng: &mut R,
    ) -> (Vec<Partitioning>, Self) {
        let ps: Vec<Partitioning> = (0..count)
            .map(|_| Partitioning::random(bounds, config, rng))
            .collect();
        let set = Self::from_partitionings(&ps);
        (ps, set)
    }

    /// Squares of every side length in `sides`, centered on each of
    /// `centers` (§4.3). Region order is center-major: all sides of
    /// center 0, then center 1, …
    pub fn squares(centers: Vec<Point>, sides: &[f64]) -> Self {
        assert!(!sides.is_empty(), "need at least one side length");
        let mut regions = Vec::with_capacity(centers.len() * sides.len());
        let mut center_ids = Vec::with_capacity(regions.capacity());
        for (ci, c) in centers.iter().enumerate() {
            for &s in sides {
                regions.push(Region::Rect(Rect::square(*c, s)));
                center_ids.push(ci);
            }
        }
        RegionSet {
            description: format!(
                "{} squares ({} centers x {} sides)",
                regions.len(),
                centers.len(),
                sides.len()
            ),
            regions,
            center_ids: Some(center_ids),
            centers: Some(centers),
        }
    }

    /// Circles of every radius in `radii` around each center
    /// (Kulldorff-style extension).
    pub fn circles(centers: Vec<Point>, radii: &[f64]) -> Self {
        assert!(!radii.is_empty(), "need at least one radius");
        let mut regions = Vec::with_capacity(centers.len() * radii.len());
        let mut center_ids = Vec::with_capacity(regions.capacity());
        for (ci, c) in centers.iter().enumerate() {
            for &r in radii {
                regions.push(Region::Circle(Circle::new(*c, r)));
                center_ids.push(ci);
            }
        }
        RegionSet {
            description: format!(
                "{} circles ({} centers x {} radii)",
                regions.len(),
                centers.len(),
                radii.len()
            ),
            regions,
            center_ids: Some(center_ids),
            centers: Some(centers),
        }
    }

    /// The paper's §4.3 construction: k-means the observation
    /// locations into `k` centers, then scan squares of the given side
    /// lengths around each center.
    pub fn square_scan_kmeans(points: &[Point], k: usize, sides: &[f64], seed: u64) -> Self {
        let km = KMeans::fit(points, &KMeansConfig::new(k, seed));
        Self::squares(km.centers, sides)
    }

    /// The paper's 20 side lengths: 0.1, 0.2, …, 2.0 degrees.
    pub fn paper_side_lengths() -> Vec<f64> {
        (1..=20).map(|i| i as f64 * 0.1).collect()
    }

    /// The regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` if the set has no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The scan center index a region was built around, when the set
    /// has center structure.
    pub fn center_id(&self, region_index: usize) -> Option<usize> {
        self.center_ids.as_ref().map(|c| c[region_index])
    }

    /// The scan centers, when applicable.
    pub fn centers(&self) -> Option<&[Point]> {
        self.centers.as_deref()
    }

    /// How the set was constructed (for reports).
    pub fn description(&self) -> &str {
        &self.description
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bounds() -> Rect {
        Rect::from_coords(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn regular_grid_counts() {
        let rs = RegionSet::regular_grid(bounds(), 4, 5);
        assert_eq!(rs.len(), 20);
        assert!(rs.center_id(0).is_none());
        // Areas tile the bounds.
        let total: f64 = rs.regions().iter().map(|r| r.area()).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn from_partitionings_concatenates() {
        let p1 = Partitioning::regular(bounds(), 2, 2);
        let p2 = Partitioning::regular(bounds(), 3, 1);
        let rs = RegionSet::from_partitionings(&[p1, p2]);
        assert_eq!(rs.len(), 4 + 3);
    }

    #[test]
    fn random_partitionings_respect_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = RandomPartitioningConfig {
            min_splits: 2,
            max_splits: 5,
        };
        let (ps, rs) = RegionSet::random_partitionings(bounds(), 10, &cfg, &mut rng);
        assert_eq!(ps.len(), 10);
        let expected: usize = ps.iter().map(|p| p.num_partitions()).sum();
        assert_eq!(rs.len(), expected);
    }

    #[test]
    fn squares_center_major_order() {
        let centers = vec![Point::new(1.0, 1.0), Point::new(5.0, 5.0)];
        let rs = RegionSet::squares(centers.clone(), &[0.5, 1.0, 2.0]);
        assert_eq!(rs.len(), 6);
        assert_eq!(rs.center_id(0), Some(0));
        assert_eq!(rs.center_id(2), Some(0));
        assert_eq!(rs.center_id(3), Some(1));
        assert_eq!(rs.centers().unwrap(), centers.as_slice());
        // First region is the 0.5-side square at center 0.
        match rs.regions()[0] {
            Region::Rect(r) => {
                assert!((r.width() - 0.5).abs() < 1e-12);
                assert_eq!(r.center(), centers[0]);
            }
            _ => panic!("expected rect"),
        }
    }

    #[test]
    fn paper_side_lengths_match_section_4_3() {
        let sides = RegionSet::paper_side_lengths();
        assert_eq!(sides.len(), 20);
        assert!((sides[0] - 0.1).abs() < 1e-12);
        assert!((sides[19] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn square_scan_kmeans_builds_k_times_sides() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let points: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let rs = RegionSet::square_scan_kmeans(&points, 7, &[0.5, 1.0], 11);
        assert_eq!(rs.len(), 14);
        assert_eq!(rs.centers().unwrap().len(), 7);
    }

    #[test]
    fn circles_are_circles() {
        let rs = RegionSet::circles(vec![Point::ORIGIN], &[1.0, 2.0]);
        assert_eq!(rs.len(), 2);
        assert!(matches!(rs.regions()[1], Region::Circle(_)));
    }

    #[test]
    fn descriptions_are_informative() {
        let rs = RegionSet::regular_grid(bounds(), 100, 50);
        assert!(rs.description().contains("100x50"));
    }
}
