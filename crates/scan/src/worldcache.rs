//! Cross-batch world caching: remember each world class's simulated
//! τ-stream so later batches resume instead of re-simulating.
//!
//! A simulated world is expensive (generate labels + recount every
//! region) but its *output* per audit direction is one `f64`: the
//! world's maximum directed LLR `τ`. Those values are fully
//! deterministic in `(engine, null model, seed, worldgen, world
//! index, direction)` — so once a batch has paid for worlds `0..k` of
//! a world class, any later batch over the same prepared engine can
//! replay the cached τ values through the ordinary
//! [`WorldLane`](sfstats::montecarlo::WorldLane) stopping rule and
//! only simulate the suffix it actually needs. A repeated request
//! (same class, same or smaller budget) costs **zero** new simulated
//! worlds; an extended request (bigger budget) pays only for the
//! un-cached tail. Results are bit-identical to a cold run *by
//! construction*: the lanes consume exactly the same values in exactly
//! the same order either way.
//!
//! The cache is keyed by world class `(null model, seed, worldgen,
//! statistic)` — the same key
//! [`ExecutionPlan`](crate::prepared::ExecutionPlan) groups requests
//! by. The generator version is part of the key because
//! [`WorldGen::Scalar`] and [`WorldGen::Word`] consume the RNG stream
//! differently: their τ-streams are two different (if statistically
//! equivalent) sequences, and splicing a `Scalar` prefix onto a `Word`
//! suffix would corrupt both. The statistic is part of the key because
//! a cached row stores the *scored* τ, not the counts it was folded
//! from: the same world scored under a different
//! [`TauKernel`](crate::config::TauKernel) is a different number. One class can hold several
//! entries, each a contiguous stream *prefix* stored as a **flat
//! row-major `f64` buffer** ([`TauRows`]: one row per world, `stride`
//! = one column per cached [`Direction`]): when a batch needs a
//! direction no entry covers, the executor re-simulates from world 0
//! evaluating the *union* of the class's widest entry and the needed
//! directions (counting dominates per-world cost, so extra LLR folds
//! are nearly free) and the result is stored as its own entry — so
//! shorter-budget requests in a new direction become cache hits on
//! their next repeat instead of re-simulating forever, while the
//! longer old prefix survives for the directions it already serves.
//! Entries that end up covering no more directions and no more worlds
//! than a newly committed one are pruned.
//!
//! Resume hands an entry's rows out **by move** and commit reinstalls
//! them (extended by whatever was freshly simulated), so the warm path
//! never copies the cached stream.
//!
//! # Size cap
//!
//! [`WorldCache::with_capacity_bytes`] bounds the resident τ-buffer
//! bytes: after every commit, entries are evicted until the cache
//! fits, **worst value first** — the entry with the highest
//! *bytes-per-replayed-world* goes before the rest, because it ties up
//! the most memory per world it has actually saved from
//! re-simulation. A big prefix nobody replays is evicted before a
//! small hot one even when the big one was touched more recently;
//! among entries of equal value density the least recently used goes
//! first (a fresh commit always starts at zero replays, so pure LRU is
//! the degenerate case of the rule). The flat buffers make the
//! accounting exact — an entry's cost is `worlds × directions × 8`
//! bytes. [`CacheStats::evictions`] counts evicted entries and
//! [`CacheStats::resident_bytes`] gauges the current footprint.
//!
//! [`WorldCache`] is deliberately dumb storage plus accounting
//! ([`CacheStats`]); the resume/commit choreography lives in
//! [`PreparedAudit::execute_cached`](crate::prepared::PreparedAudit::execute_cached).

use crate::config::{NullModel, Statistic, WorldGen};
use crate::direction::Direction;
use serde::{Deserialize, Serialize};

/// A flat row-major matrix of per-world τ values: world `w`'s value
/// for direction column `d` lives at `values[w·stride + d]`.
///
/// This is the storage format of every simulated τ-stream in the
/// serving stack — the cache entries here, and the fresh rows the
/// batched executor collects — replacing the per-world
/// `Vec<Vec<f64>>` boxes (one heap allocation per world per span)
/// with one growable buffer whose byte cost is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct TauRows {
    /// Row width; always `>= 1` ([`TauRows::new`] enforces it, and
    /// there is deliberately no `Default` — a stride-0 matrix has no
    /// valid row shape).
    stride: usize,
    values: Vec<f64>,
}

impl TauRows {
    /// An empty matrix whose rows will carry `stride` directions.
    ///
    /// # Panics
    /// Panics if `stride == 0` (a row must hold at least one value).
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "a τ-row needs at least one direction column");
        TauRows {
            stride,
            values: Vec::new(),
        }
    }

    /// Directions per world (row width).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of complete rows (worlds).
    #[inline]
    pub fn worlds(&self) -> usize {
        self.values.len() / self.stride
    }

    /// `true` when no world is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// World `w`'s row of per-direction τ values.
    #[inline]
    pub fn row(&self, w: usize) -> &[f64] {
        &self.values[w * self.stride..(w + 1) * self.stride]
    }

    /// The flat backing buffer, row-major.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Appends one world's row.
    ///
    /// # Panics
    /// Panics if `row.len() != stride`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.stride, "row width must equal the stride");
        self.values.extend_from_slice(row);
    }

    /// Appends whole rows from a flat row-major buffer of the same
    /// stride (the executor's span buffer).
    ///
    /// # Panics
    /// Panics if `values.len()` is not a multiple of the stride.
    pub fn extend_from_values(&mut self, values: &[f64]) {
        assert!(
            self.stride > 0 && values.len().is_multiple_of(self.stride),
            "flat buffer of {} values does not hold whole rows of stride {}",
            values.len(),
            self.stride
        );
        self.values.extend_from_slice(values);
    }

    /// Appends another matrix of the same stride.
    ///
    /// # Panics
    /// Panics if the strides differ (unless `other` is empty).
    pub fn append(&mut self, other: TauRows) {
        if other.is_empty() {
            return;
        }
        assert_eq!(
            self.stride, other.stride,
            "cannot append rows of a different stride"
        );
        self.values.extend_from_slice(&other.values);
    }

    /// Payload bytes of the stored τ values (`worlds × stride × 8`) —
    /// the unit the cache capacity is accounted in.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }
}

/// Cumulative cache accounting, folded into the serving layer's
/// `ServerStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Group executions that replayed at least one cached world.
    pub hits: u64,
    /// Group executions that replayed nothing (cold class, or a
    /// direction no entry covered yet).
    pub misses: u64,
    /// Worlds answered from the cache instead of being simulated.
    pub worlds_replayed: u64,
    /// Worlds simulated and recorded into the cache.
    pub worlds_simulated: u64,
    /// Entries evicted by the size cap (see
    /// [`WorldCache::with_capacity_bytes`]).
    pub evictions: u64,
    /// Resident τ-buffer bytes right now — a gauge, not a counter:
    /// commits raise it, evictions and [`WorldCache::clear`] lower it.
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from cache, `0.0` before the
    /// first lookup. Printed on the `Display` line (three decimals)
    /// so load generators scrape warmth without re-deriving it.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Folds another cache's accounting into this one (counters and
    /// the resident-bytes gauge both sum), so a serving layer can
    /// report one aggregate across every session's cache.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.worlds_replayed += other.worlds_replayed;
        self.worlds_simulated += other.worlds_simulated;
        self.evictions += other.evictions;
        self.resident_bytes += other.resident_bytes;
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} hit_rate={:.3} replayed={} simulated={} evictions={} \
             resident_bytes={}",
            self.hits,
            self.misses,
            self.hit_rate(),
            self.worlds_replayed,
            self.worlds_simulated,
            self.evictions,
            self.resident_bytes
        )
    }
}

/// One cached τ-stream prefix of a world class.
#[derive(Debug, Clone, PartialEq)]
struct CachedClass {
    null_model: NullModel,
    seed: u64,
    worldgen: WorldGen,
    statistic: Statistic,
    /// Directions the rows carry, in storage (column) order.
    dirs: Vec<Direction>,
    /// Flat τ matrix: row `w`, column `d` = τ of world `w` in
    /// direction `dirs[d]`. Always a contiguous prefix of the class's
    /// world stream.
    rows: TauRows,
    /// Last resume/commit tick — the eviction tie-break.
    last_touch: u64,
    /// Total worlds this entry has answered from its rows instead of
    /// simulation (accumulated from every commit's `replayed`) — the
    /// demonstrated value the eviction policy weighs its bytes
    /// against.
    replayed_worlds: u64,
}

impl CachedClass {
    fn is_class(
        &self,
        null_model: NullModel,
        seed: u64,
        worldgen: WorldGen,
        statistic: Statistic,
    ) -> bool {
        self.null_model == null_model
            && self.seed == seed
            && self.worldgen == worldgen
            && self.statistic == statistic
    }

    fn covers(&self, needed: &[Direction]) -> bool {
        needed.iter().all(|d| self.dirs.contains(d))
    }
}

/// What the executor should do for one group: which directions to
/// evaluate per world (a superset of the group's needs) and the cached
/// rows, aligned to that direction list, it can replay before
/// simulating. The rows are *moved* out of the cache;
/// [`WorldCache::commit`] reinstalls them.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ResumePoint {
    /// Direction list every evaluated world must produce a τ for.
    pub eval_dirs: Vec<Direction>,
    /// Cached stream prefix aligned to `eval_dirs` (empty on a miss).
    pub prefix: TauRows,
}

/// Per-engine cache of simulated world statistics, keyed by world
/// class `(null model, seed, worldgen, statistic)`.
///
/// Owned by whoever owns the
/// [`PreparedAudit`](crate::prepared::PreparedAudit) — one cache per
/// prepared dataset; entries are only meaningful against the engine
/// they were filled from.
#[derive(Debug, Clone, Default)]
pub struct WorldCache {
    classes: Vec<CachedClass>,
    stats: CacheStats,
    /// Hard bound on resident τ-buffer bytes (`None` = unbounded).
    capacity_bytes: Option<usize>,
    /// Monotonic touch clock driving LRU eviction.
    clock: u64,
}

impl WorldCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that evicts entries whenever the resident
    /// τ-buffer bytes exceed `cap` (checked after every commit; the
    /// bound is hard, so a single entry larger than `cap` is itself
    /// evicted). Eviction is by value density, worst first: the entry
    /// whose bytes-per-replayed-world is highest goes before the rest,
    /// with ties broken least-recently-used first (see the module
    /// docs).
    pub fn with_capacity_bytes(cap: usize) -> Self {
        WorldCache {
            capacity_bytes: Some(cap),
            ..Self::default()
        }
    }

    /// The configured byte cap (`None` = unbounded).
    pub fn capacity_bytes(&self) -> Option<usize> {
        self.capacity_bytes
    }

    /// Resident τ-buffer bytes across every entry.
    pub fn resident_bytes(&self) -> usize {
        self.classes.iter().map(|c| c.rows.bytes()).sum()
    }

    /// Number of cached stream prefixes (a world class can hold more
    /// than one, for different direction sets).
    pub fn entries(&self) -> usize {
        self.classes.len()
    }

    /// Total cached worlds across every entry.
    pub fn cached_worlds(&self) -> usize {
        self.classes.iter().map(|c| c.rows.worlds()).sum()
    }

    /// Longest cached prefix for one class, if present.
    pub fn class_worlds(
        &self,
        null_model: NullModel,
        seed: u64,
        worldgen: WorldGen,
        statistic: Statistic,
    ) -> Option<usize> {
        self.classes
            .iter()
            .filter(|c| c.is_class(null_model, seed, worldgen, statistic))
            .map(|c| c.rows.worlds())
            .max()
    }

    /// Cumulative hit/replay accounting.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Drops every entry (accounting is kept; the resident gauge goes
    /// to zero).
    pub fn clear(&mut self) {
        self.classes.clear();
        self.stats.resident_bytes = 0;
    }

    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Resolves the resume point for a group needing `needed`
    /// directions from class `(null_model, seed, worldgen,
    /// statistic)`.
    ///
    /// * Some entry covers every needed direction → move out the
    ///   longest such entry's whole prefix (evaluating the entry's
    ///   full direction list keeps appended rows column-complete).
    /// * No entry covers → no replay; evaluate the union of the
    ///   class's widest entry and the needed directions, so the
    ///   re-simulated rows serve both old and new directions from now
    ///   on.
    ///
    /// Every `resume` must be paired with one [`WorldCache::commit`]
    /// (the covering entry's rows sit empty in between).
    pub(crate) fn resume(
        &mut self,
        null_model: NullModel,
        seed: u64,
        worldgen: WorldGen,
        statistic: Statistic,
        needed: &[Direction],
    ) -> ResumePoint {
        let now = self.touch();
        let covering = self
            .classes
            .iter_mut()
            .filter(|c| c.is_class(null_model, seed, worldgen, statistic) && c.covers(needed))
            .max_by_key(|c| c.rows.worlds());
        if let Some(entry) = covering {
            entry.last_touch = now;
            let stride = entry.dirs.len();
            return ResumePoint {
                eval_dirs: entry.dirs.clone(),
                prefix: std::mem::replace(&mut entry.rows, TauRows::new(stride)),
            };
        }
        let mut eval_dirs = self
            .classes
            .iter()
            .filter(|c| c.is_class(null_model, seed, worldgen, statistic))
            .max_by_key(|c| c.rows.worlds())
            .map(|c| c.dirs.clone())
            .unwrap_or_default();
        for &d in needed {
            if !eval_dirs.contains(&d) {
                eval_dirs.push(d);
            }
        }
        let stride = eval_dirs.len().max(1);
        ResumePoint {
            eval_dirs,
            prefix: TauRows::new(stride),
        }
    }

    /// Records one group execution: `replayed` worlds came from the
    /// `prefix` handed out by [`WorldCache::resume`] (reinstalled
    /// here), `fresh` rows (aligned to that resume's `eval_dirs`) were
    /// simulated after it.
    ///
    /// Rows stay a contiguous stream prefix: fresh rows extend the
    /// prefix only when it was consumed whole. A commit under a
    /// direction set no entry holds becomes a new entry, pruning any
    /// entry of the class it strictly subsumes (no extra direction, no
    /// extra world). When a byte cap is configured, least-recently-
    /// used entries are evicted afterwards until the cache fits.
    #[allow(clippy::too_many_arguments)] // one call site (the executor's commit stage); the args ARE the class key + run outcome
    pub(crate) fn commit(
        &mut self,
        null_model: NullModel,
        seed: u64,
        worldgen: WorldGen,
        statistic: Statistic,
        eval_dirs: Vec<Direction>,
        mut prefix: TauRows,
        replayed: usize,
        fresh: TauRows,
    ) {
        let now = self.touch();
        if replayed > 0 {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.stats.worlds_replayed += replayed as u64;
        self.stats.worlds_simulated += fresh.worlds() as u64;
        // Fresh rows continue exactly where the prefix ends iff the
        // run consumed the whole prefix (a run that stopped inside it
        // simulated nothing).
        if replayed == prefix.worlds() {
            prefix.append(fresh);
        }
        match self
            .classes
            .iter_mut()
            .find(|c| c.is_class(null_model, seed, worldgen, statistic) && c.dirs == eval_dirs)
        {
            // The entry resume() emptied (its dirs were echoed back to
            // us): reinstall the possibly-extended rows and credit the
            // worlds it just served.
            Some(entry) => {
                entry.rows = prefix;
                entry.last_touch = now;
                entry.replayed_worlds += replayed as u64;
            }
            None if prefix.is_empty() => {}
            None => {
                self.classes.retain(|c| {
                    !(c.is_class(null_model, seed, worldgen, statistic)
                        && c.dirs.iter().all(|d| eval_dirs.contains(d))
                        && c.rows.worlds() <= prefix.worlds())
                });
                self.classes.push(CachedClass {
                    null_model,
                    seed,
                    worldgen,
                    statistic,
                    dirs: eval_dirs,
                    rows: prefix,
                    last_touch: now,
                    replayed_worlds: 0,
                });
            }
        }
        self.enforce_capacity();
        self.stats.resident_bytes = self.resident_bytes() as u64;
    }

    /// Evicts entries until the resident bytes fit the configured cap,
    /// worst value density first: highest bytes-per-replayed-world
    /// goes first, least-recently-used first among equals (see the
    /// module docs).
    fn enforce_capacity(&mut self) {
        let Some(cap) = self.capacity_bytes else {
            return;
        };
        let mut resident = self.resident_bytes();
        while resident > cap && !self.classes.is_empty() {
            let worst = (1..self.classes.len()).fold(0, |worst, i| {
                if evicts_before(&self.classes[i], &self.classes[worst]) {
                    i
                } else {
                    worst
                }
            });
            let evicted = self.classes.remove(worst);
            resident -= evicted.rows.bytes();
            self.stats.evictions += 1;
        }
    }
}

/// Eviction order: `true` when `a` should be evicted before `b`.
///
/// `a` goes first when its bytes-per-replayed-world is higher —
/// compared by cross-multiplication in `u128`
/// (`bytes_a / (replayed_a + 1) > bytes_b / (replayed_b + 1)` without
/// the integer division's truncation; the `+ 1` keeps never-replayed
/// entries finite and comparable). Equal densities fall back to
/// least-recently-used first.
fn evicts_before(a: &CachedClass, b: &CachedClass) -> bool {
    let density_a = a.rows.bytes() as u128 * (b.replayed_worlds as u128 + 1);
    let density_b = b.rows.bytes() as u128 * (a.replayed_worlds as u128 + 1);
    density_a > density_b || (density_a == density_b && a.last_touch < b.last_touch)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TS: Direction = Direction::TwoSided;
    const HI: Direction = Direction::High;
    const SCALAR: WorldGen = WorldGen::Scalar;
    const WORD: WorldGen = WorldGen::Word;
    const LLR: Statistic = Statistic::BernoulliLlr;
    const EO: Statistic = Statistic::EqualOppTpr;

    fn rows(n: usize, cols: usize) -> TauRows {
        let mut rows = TauRows::new(cols);
        for w in 0..n {
            rows.push_row(&vec![w as f64; cols]);
        }
        rows
    }

    #[test]
    fn tau_rows_flat_storage_round_trips() {
        let mut t = TauRows::new(2);
        assert!(t.is_empty());
        t.push_row(&[1.0, 2.0]);
        t.push_row(&[3.0, 4.0]);
        assert_eq!(t.worlds(), 2);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert_eq!(t.values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.bytes(), 32);
        t.extend_from_values(&[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(t.worlds(), 4);
        let mut other = TauRows::new(2);
        other.push_row(&[9.0, 10.0]);
        t.append(other);
        assert_eq!(t.worlds(), 5);
        assert_eq!(t.row(4), &[9.0, 10.0]);
        // Appending an empty matrix of any stride is a no-op.
        t.append(TauRows::new(7));
        assert_eq!(t.worlds(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn tau_rows_reject_ragged_rows() {
        let mut t = TauRows::new(3);
        t.push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn tau_rows_reject_partial_flat_buffers() {
        let mut t = TauRows::new(2);
        t.extend_from_values(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn cold_resume_is_a_miss_and_commit_creates_the_entry() {
        let mut cache = WorldCache::new();
        let r = cache.resume(NullModel::Bernoulli, 7, SCALAR, LLR, &[TS]);
        assert_eq!(r.eval_dirs, vec![TS]);
        assert!(r.prefix.is_empty());
        cache.commit(
            NullModel::Bernoulli,
            7,
            SCALAR,
            LLR,
            r.eval_dirs,
            r.prefix,
            0,
            rows(5, 1),
        );
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.cached_worlds(), 5);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().worlds_simulated, 5);
        assert_eq!(cache.stats().resident_bytes, 5 * 8);
        assert_eq!(cache.resident_bytes(), 40);
    }

    #[test]
    fn covered_resume_moves_the_prefix_out_and_commit_extends_it() {
        let mut cache = WorldCache::new();
        let r = cache.resume(NullModel::Bernoulli, 7, SCALAR, LLR, &[TS]);
        cache.commit(
            NullModel::Bernoulli,
            7,
            SCALAR,
            LLR,
            r.eval_dirs,
            r.prefix,
            0,
            rows(5, 1),
        );
        let r = cache.resume(NullModel::Bernoulli, 7, SCALAR, LLR, &[TS]);
        assert_eq!(r.prefix.worlds(), 5);
        assert_eq!(
            cache.cached_worlds(),
            0,
            "the prefix is moved, not cloned; commit reinstalls it"
        );
        // The run consumed the prefix and simulated 3 more.
        cache.commit(
            NullModel::Bernoulli,
            7,
            SCALAR,
            LLR,
            r.eval_dirs,
            r.prefix,
            5,
            rows(3, 1),
        );
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 7, SCALAR, LLR),
            Some(8)
        );
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().worlds_replayed, 5);
    }

    #[test]
    fn partial_replay_reinstalls_the_whole_prefix() {
        let mut cache = WorldCache::new();
        cache.commit(
            NullModel::Bernoulli,
            1,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(10, 1),
        );
        // A smaller-budget run stopped after 4 of the 10 cached worlds:
        // nothing fresh, the entry must keep its 10 rows.
        let r = cache.resume(NullModel::Bernoulli, 1, SCALAR, LLR, &[TS]);
        cache.commit(
            NullModel::Bernoulli,
            1,
            SCALAR,
            LLR,
            r.eval_dirs,
            r.prefix,
            4,
            TauRows::new(1),
        );
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 1, SCALAR, LLR),
            Some(10)
        );
    }

    #[test]
    fn uncovered_direction_becomes_its_own_entry_and_then_hits() {
        let mut cache = WorldCache::new();
        cache.commit(
            NullModel::Bernoulli,
            2,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(6, 1),
        );
        // HI is uncovered: cold, but evaluated as the union with the
        // widest entry so the new rows serve both directions.
        let r = cache.resume(NullModel::Bernoulli, 2, SCALAR, LLR, &[HI]);
        assert_eq!(r.eval_dirs, vec![TS, HI], "union keeps cached directions");
        assert!(r.prefix.is_empty(), "uncovered direction cannot replay");
        // A shorter re-simulation coexists with the longer old prefix…
        cache.commit(
            NullModel::Bernoulli,
            2,
            SCALAR,
            LLR,
            r.eval_dirs,
            r.prefix,
            0,
            rows(4, 2),
        );
        assert_eq!(cache.entries(), 2);
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 2, SCALAR, LLR),
            Some(6)
        );
        // …and the SECOND short-budget HI request is now a pure hit —
        // uncovered-direction repeats must not re-simulate forever.
        let r2 = cache.resume(NullModel::Bernoulli, 2, SCALAR, LLR, &[HI]);
        assert_eq!(r2.prefix.worlds(), 4);
        cache.commit(
            NullModel::Bernoulli,
            2,
            SCALAR,
            LLR,
            r2.eval_dirs,
            r2.prefix,
            4,
            TauRows::new(2),
        );
        assert_eq!(cache.stats().hits, 1);
        // Extending the union entry past the old one: both survive
        // (pruning happens only when a NEW entry lands)…
        let r3 = cache.resume(NullModel::Bernoulli, 2, SCALAR, LLR, &[TS, HI]);
        assert_eq!(r3.prefix.worlds(), 4);
        cache.commit(
            NullModel::Bernoulli,
            2,
            SCALAR,
            LLR,
            r3.eval_dirs,
            r3.prefix,
            4,
            rows(3, 2),
        );
        assert_eq!(cache.entries(), 2);
        // …and the longest covering entry wins the next resume.
        let r4 = cache.resume(NullModel::Bernoulli, 2, SCALAR, LLR, &[TS]);
        assert_eq!(r4.prefix.worlds(), 7, "[TS,HI](7) out-lasts [TS](6)");
        cache.commit(
            NullModel::Bernoulli,
            2,
            SCALAR,
            LLR,
            r4.eval_dirs,
            r4.prefix,
            7,
            TauRows::new(2),
        );
    }

    #[test]
    fn subsumed_entries_are_pruned_when_a_wider_equal_length_entry_lands() {
        let mut cache = WorldCache::new();
        cache.commit(
            NullModel::Bernoulli,
            5,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(6, 1),
        );
        let r = cache.resume(NullModel::Bernoulli, 5, SCALAR, LLR, &[HI]);
        // Union re-simulation reaches the old entry's length: the
        // narrower [TS] entry is subsumed and dropped.
        cache.commit(
            NullModel::Bernoulli,
            5,
            SCALAR,
            LLR,
            r.eval_dirs,
            r.prefix,
            0,
            rows(6, 2),
        );
        assert_eq!(cache.entries(), 1);
        let r2 = cache.resume(NullModel::Bernoulli, 5, SCALAR, LLR, &[TS, HI]);
        assert_eq!(r2.prefix.worlds(), 6);
        cache.commit(
            NullModel::Bernoulli,
            5,
            SCALAR,
            LLR,
            r2.eval_dirs,
            r2.prefix,
            6,
            TauRows::new(2),
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 2, "cold TS commit + uncovered HI");
    }

    #[test]
    fn classes_are_keyed_by_null_model_seed_and_worldgen() {
        let mut cache = WorldCache::new();
        cache.commit(
            NullModel::Bernoulli,
            3,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(2, 1),
        );
        cache.commit(
            NullModel::Permutation,
            3,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(3, 1),
        );
        cache.commit(
            NullModel::Bernoulli,
            4,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(4, 1),
        );
        assert_eq!(cache.entries(), 3);
        assert_eq!(cache.cached_worlds(), 9);
        assert_eq!(
            cache.class_worlds(NullModel::Permutation, 3, SCALAR, LLR),
            Some(3)
        );
        assert_eq!(
            cache.class_worlds(NullModel::Permutation, 4, SCALAR, LLR),
            None
        );
        cache.clear();
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.cached_worlds(), 0);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn scalar_and_word_prefixes_never_mix() {
        // The satellite invariant: a Word resume must never see a
        // Scalar prefix (and vice versa) — their RNG streams differ,
        // so splicing them would corrupt both τ-streams.
        let mut cache = WorldCache::new();
        cache.commit(
            NullModel::Bernoulli,
            9,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(8, 1),
        );
        let word = cache.resume(NullModel::Bernoulli, 9, WORD, LLR, &[TS]);
        assert!(
            word.prefix.is_empty(),
            "a Word class must not replay a Scalar prefix"
        );
        cache.commit(
            NullModel::Bernoulli,
            9,
            WORD,
            LLR,
            word.eval_dirs,
            word.prefix,
            0,
            rows(5, 1),
        );
        assert_eq!(cache.entries(), 2, "one entry per generator version");
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 9, SCALAR, LLR),
            Some(8)
        );
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 9, WORD, LLR),
            Some(5)
        );
        // And the Scalar entry still replays untouched.
        let scalar = cache.resume(NullModel::Bernoulli, 9, SCALAR, LLR, &[TS]);
        assert_eq!(scalar.prefix.worlds(), 8);
        cache.commit(
            NullModel::Bernoulli,
            9,
            SCALAR,
            LLR,
            scalar.eval_dirs,
            scalar.prefix,
            8,
            TauRows::new(1),
        );
    }

    #[test]
    fn capacity_cap_evicts_never_replayed_entries_lru_first() {
        // Cap fits two 10-world single-direction entries (80 bytes
        // each) but not three. All three entries have zero replays, so
        // their value densities tie and the rule degenerates to LRU.
        let mut cache = WorldCache::with_capacity_bytes(180);
        assert_eq!(cache.capacity_bytes(), Some(180));
        for seed in 0..3u64 {
            cache.commit(
                NullModel::Bernoulli,
                seed,
                SCALAR,
                LLR,
                vec![TS],
                TauRows::new(1),
                0,
                rows(10, 1),
            );
        }
        assert_eq!(cache.entries(), 2, "third commit evicts one entry");
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.resident_bytes() <= 180);
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 0, SCALAR, LLR),
            None,
            "equal densities: seed 0 was the least recently used"
        );
        assert!(cache
            .class_worlds(NullModel::Bernoulli, 1, SCALAR, LLR)
            .is_some());
        assert!(cache
            .class_worlds(NullModel::Bernoulli, 2, SCALAR, LLR)
            .is_some());
        // Replaying seed 1 (resume + commit with replayed=10) buys it
        // value density; never-replayed seed 2 goes instead on the
        // next overflow.
        let r = cache.resume(NullModel::Bernoulli, 1, SCALAR, LLR, &[TS]);
        cache.commit(
            NullModel::Bernoulli,
            1,
            SCALAR,
            LLR,
            r.eval_dirs,
            r.prefix,
            10,
            TauRows::new(1),
        );
        cache.commit(
            NullModel::Bernoulli,
            3,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(10, 1),
        );
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache
            .class_worlds(NullModel::Bernoulli, 1, SCALAR, LLR)
            .is_some());
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 2, SCALAR, LLR),
            None
        );
    }

    #[test]
    fn eviction_weighs_bytes_against_replays_not_recency() {
        // The cost-aware order, pinned: a hot entry (many replayed
        // worlds per byte) survives an overflow even though it is the
        // least recently used; the big cold prefix goes first despite
        // being fresher.
        let mut cache = WorldCache::with_capacity_bytes(250);
        // Seed 1: 10 worlds (80 bytes), replayed twice → 20 worlds of
        // demonstrated value. Touched FIRST (oldest by LRU).
        cache.commit(
            NullModel::Bernoulli,
            1,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(10, 1),
        );
        for _ in 0..2 {
            let r = cache.resume(NullModel::Bernoulli, 1, SCALAR, LLR, &[TS]);
            cache.commit(
                NullModel::Bernoulli,
                1,
                SCALAR,
                LLR,
                r.eval_dirs,
                r.prefix,
                10,
                TauRows::new(1),
            );
        }
        // Seed 2: 20 worlds (160 bytes), never replayed, most recent.
        cache.commit(
            NullModel::Bernoulli,
            2,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(20, 1),
        );
        assert_eq!(cache.resident_bytes(), 240);
        // Seed 3's 80 bytes overflow the cap. Densities: seed 1 is
        // 80/(20+1) ≈ 3.8, seed 2 is 160/1 = 160, seed 3 is 80/1 = 80
        // — the big never-replayed entry is evicted, NOT the LRU-
        // oldest (seed 1) and not the newcomer.
        cache.commit(
            NullModel::Bernoulli,
            3,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(10, 1),
        );
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 2, SCALAR, LLR),
            None,
            "highest bytes-per-replayed-world goes first"
        );
        assert!(
            cache
                .class_worlds(NullModel::Bernoulli, 1, SCALAR, LLR)
                .is_some(),
            "replay history shields the LRU-oldest entry"
        );
        assert!(cache
            .class_worlds(NullModel::Bernoulli, 3, SCALAR, LLR)
            .is_some());
    }

    #[test]
    fn oversized_single_entry_is_hard_bounded() {
        let mut cache = WorldCache::with_capacity_bytes(64);
        cache.commit(
            NullModel::Bernoulli,
            1,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(100, 1),
        );
        assert_eq!(cache.entries(), 0, "the cap is hard");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn stats_display_summarises() {
        let mut cache = WorldCache::new();
        cache.commit(
            NullModel::Bernoulli,
            1,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(5, 1),
        );
        let r = cache.resume(NullModel::Bernoulli, 1, SCALAR, LLR, &[TS]);
        cache.commit(
            NullModel::Bernoulli,
            1,
            SCALAR,
            LLR,
            r.eval_dirs,
            r.prefix,
            5,
            TauRows::new(1),
        );
        let line = cache.stats().to_string();
        assert!(line.contains("hits=1"), "{line}");
        assert!(line.contains("hit_rate=0.500"), "{line}");
        assert!(line.contains("replayed=5"), "{line}");
        assert!(line.contains("evictions=0"), "{line}");
        assert!(line.contains("resident_bytes=40"), "{line}");
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn statistics_are_distinct_world_classes() {
        // Same null model, seed and worldgen scored under a different
        // statistic: a cached row stores the *scored* τ, not the
        // counts, so the entries must never mix.
        let mut cache = WorldCache::new();
        cache.commit(
            NullModel::Bernoulli,
            11,
            SCALAR,
            LLR,
            vec![TS],
            TauRows::new(1),
            0,
            rows(6, 1),
        );
        let r = cache.resume(NullModel::Bernoulli, 11, SCALAR, EO, &[TS]);
        assert!(
            r.prefix.is_empty(),
            "an equal-opportunity class must not replay a Bernoulli-LLR prefix"
        );
        cache.commit(
            NullModel::Bernoulli,
            11,
            SCALAR,
            EO,
            r.eval_dirs,
            r.prefix,
            0,
            rows(4, 1),
        );
        assert_eq!(cache.entries(), 2, "one entry per statistic");
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 11, SCALAR, LLR),
            Some(6)
        );
        assert_eq!(
            cache.class_worlds(NullModel::Bernoulli, 11, SCALAR, EO),
            Some(4)
        );
        // And the Bernoulli-LLR entry still replays untouched.
        let llr = cache.resume(NullModel::Bernoulli, 11, SCALAR, LLR, &[TS]);
        assert_eq!(llr.prefix.worlds(), 6);
        cache.commit(
            NullModel::Bernoulli,
            11,
            SCALAR,
            LLR,
            llr.eval_dirs,
            llr.prefix,
            6,
            TauRows::new(1),
        );
    }
}
