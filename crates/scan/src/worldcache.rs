//! Cross-batch world caching: remember each world class's simulated
//! τ-stream so later batches resume instead of re-simulating.
//!
//! A simulated world is expensive (generate labels + recount every
//! region) but its *output* per audit direction is one `f64`: the
//! world's maximum directed LLR `τ`. Those values are fully
//! deterministic in `(engine, null model, seed, world index,
//! direction)` — so once a batch has paid for worlds `0..k` of a world
//! class, any later batch over the same prepared engine can replay the
//! cached τ values through the ordinary
//! [`WorldLane`](sfstats::montecarlo::WorldLane) stopping rule and
//! only simulate the suffix it actually needs. A repeated request
//! (same class, same or smaller budget) costs **zero** new simulated
//! worlds; an extended request (bigger budget) pays only for the
//! un-cached tail. Results are bit-identical to a cold run *by
//! construction*: the lanes consume exactly the same values in exactly
//! the same order either way.
//!
//! The cache is keyed by world class `(null model, seed)` — the same
//! key [`ExecutionPlan`](crate::prepared::ExecutionPlan) groups
//! requests by. One class can hold several entries, each a contiguous
//! stream *prefix* (one row per world, one column per cached
//! [`Direction`]): when a batch needs a direction no entry covers, the
//! executor re-simulates from world 0 evaluating the *union* of the
//! class's widest entry and the needed directions (counting dominates
//! per-world cost, so extra LLR folds are nearly free) and the result
//! is stored as its own entry — so shorter-budget requests in a new
//! direction become cache hits on their next repeat instead of
//! re-simulating forever, while the longer old prefix survives for the
//! directions it already serves. Entries that end up covering no more
//! directions and no more worlds than a newly committed one are
//! pruned.
//!
//! Resume hands an entry's rows out **by move** and commit reinstalls
//! them (extended by whatever was freshly simulated), so the warm path
//! never copies the cached stream.
//!
//! [`WorldCache`] is deliberately dumb storage plus accounting
//! ([`CacheStats`]); the resume/commit choreography lives in
//! [`PreparedAudit::execute_cached`](crate::prepared::PreparedAudit::execute_cached).

use crate::config::NullModel;
use crate::direction::Direction;
use serde::{Deserialize, Serialize};

/// Cumulative cache accounting, folded into the serving layer's
/// `ServerStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Group executions that replayed at least one cached world.
    pub hits: u64,
    /// Group executions that replayed nothing (cold class, or a
    /// direction no entry covered yet).
    pub misses: u64,
    /// Worlds answered from the cache instead of being simulated.
    pub worlds_replayed: u64,
    /// Worlds simulated and recorded into the cache.
    pub worlds_simulated: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} replayed={} simulated={}",
            self.hits, self.misses, self.worlds_replayed, self.worlds_simulated
        )
    }
}

/// One cached τ-stream prefix of a world class.
#[derive(Debug, Clone, PartialEq)]
struct CachedClass {
    null_model: NullModel,
    seed: u64,
    /// Directions the rows carry, in storage order.
    dirs: Vec<Direction>,
    /// `rows[w][d]` = τ of world `w` in direction `dirs[d]`. Always a
    /// contiguous prefix of the class's world stream.
    rows: Vec<Vec<f64>>,
}

impl CachedClass {
    fn is_class(&self, null_model: NullModel, seed: u64) -> bool {
        self.null_model == null_model && self.seed == seed
    }

    fn covers(&self, needed: &[Direction]) -> bool {
        needed.iter().all(|d| self.dirs.contains(d))
    }
}

/// What the executor should do for one group: which directions to
/// evaluate per world (a superset of the group's needs) and the cached
/// rows, aligned to that direction list, it can replay before
/// simulating. The rows are *moved* out of the cache;
/// [`WorldCache::commit`] reinstalls them.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ResumePoint {
    /// Direction list every evaluated world must produce a τ for.
    pub eval_dirs: Vec<Direction>,
    /// Cached stream prefix aligned to `eval_dirs` (empty on a miss).
    pub prefix: Vec<Vec<f64>>,
}

/// Per-engine cache of simulated world statistics, keyed by world
/// class `(null model, seed)`.
///
/// Owned by whoever owns the
/// [`PreparedAudit`](crate::prepared::PreparedAudit) — one cache per
/// prepared dataset; entries are only meaningful against the engine
/// they were filled from.
#[derive(Debug, Clone, Default)]
pub struct WorldCache {
    classes: Vec<CachedClass>,
    stats: CacheStats,
}

impl WorldCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached stream prefixes (a world class can hold more
    /// than one, for different direction sets).
    pub fn entries(&self) -> usize {
        self.classes.len()
    }

    /// Total cached worlds across every entry.
    pub fn cached_worlds(&self) -> usize {
        self.classes.iter().map(|c| c.rows.len()).sum()
    }

    /// Longest cached prefix for one class, if present.
    pub fn class_worlds(&self, null_model: NullModel, seed: u64) -> Option<usize> {
        self.classes
            .iter()
            .filter(|c| c.is_class(null_model, seed))
            .map(|c| c.rows.len())
            .max()
    }

    /// Cumulative hit/replay accounting.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Drops every entry (accounting is kept).
    pub fn clear(&mut self) {
        self.classes.clear();
    }

    /// Resolves the resume point for a group needing `needed`
    /// directions from class `(null_model, seed)`.
    ///
    /// * Some entry covers every needed direction → move out the
    ///   longest such entry's whole prefix (evaluating the entry's
    ///   full direction list keeps appended rows column-complete).
    /// * No entry covers → no replay; evaluate the union of the
    ///   class's widest entry and the needed directions, so the
    ///   re-simulated rows serve both old and new directions from now
    ///   on.
    ///
    /// Every `resume` must be paired with one [`WorldCache::commit`]
    /// (the covering entry's rows sit empty in between).
    pub(crate) fn resume(
        &mut self,
        null_model: NullModel,
        seed: u64,
        needed: &[Direction],
    ) -> ResumePoint {
        let covering = self
            .classes
            .iter_mut()
            .filter(|c| c.is_class(null_model, seed) && c.covers(needed))
            .max_by_key(|c| c.rows.len());
        if let Some(entry) = covering {
            return ResumePoint {
                eval_dirs: entry.dirs.clone(),
                prefix: std::mem::take(&mut entry.rows),
            };
        }
        let mut eval_dirs = self
            .classes
            .iter()
            .filter(|c| c.is_class(null_model, seed))
            .max_by_key(|c| c.rows.len())
            .map(|c| c.dirs.clone())
            .unwrap_or_default();
        for &d in needed {
            if !eval_dirs.contains(&d) {
                eval_dirs.push(d);
            }
        }
        ResumePoint {
            eval_dirs,
            prefix: Vec::new(),
        }
    }

    /// Records one group execution: `replayed` worlds came from the
    /// `prefix` handed out by [`WorldCache::resume`] (reinstalled
    /// here), `fresh` rows (aligned to that resume's `eval_dirs`) were
    /// simulated after it.
    ///
    /// Rows stay a contiguous stream prefix: fresh rows extend the
    /// prefix only when it was consumed whole. A commit under a
    /// direction set no entry holds becomes a new entry, pruning any
    /// entry of the class it strictly subsumes (no extra direction, no
    /// extra world).
    pub(crate) fn commit(
        &mut self,
        null_model: NullModel,
        seed: u64,
        eval_dirs: Vec<Direction>,
        mut prefix: Vec<Vec<f64>>,
        replayed: usize,
        fresh: Vec<Vec<f64>>,
    ) {
        if replayed > 0 {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.stats.worlds_replayed += replayed as u64;
        self.stats.worlds_simulated += fresh.len() as u64;
        // Fresh rows continue exactly where the prefix ends iff the
        // run consumed the whole prefix (a run that stopped inside it
        // simulated nothing).
        if replayed == prefix.len() {
            prefix.extend(fresh);
        }
        match self
            .classes
            .iter_mut()
            .find(|c| c.is_class(null_model, seed) && c.dirs == eval_dirs)
        {
            // The entry resume() emptied (its dirs were echoed back to
            // us): reinstall the possibly-extended rows.
            Some(entry) => entry.rows = prefix,
            None if prefix.is_empty() => {}
            None => {
                self.classes.retain(|c| {
                    !(c.is_class(null_model, seed)
                        && c.dirs.iter().all(|d| eval_dirs.contains(d))
                        && c.rows.len() <= prefix.len())
                });
                self.classes.push(CachedClass {
                    null_model,
                    seed,
                    dirs: eval_dirs,
                    rows: prefix,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TS: Direction = Direction::TwoSided;
    const HI: Direction = Direction::High;

    fn rows(n: usize, cols: usize) -> Vec<Vec<f64>> {
        (0..n).map(|w| vec![w as f64; cols]).collect()
    }

    #[test]
    fn cold_resume_is_a_miss_and_commit_creates_the_entry() {
        let mut cache = WorldCache::new();
        let r = cache.resume(NullModel::Bernoulli, 7, &[TS]);
        assert_eq!(r.eval_dirs, vec![TS]);
        assert!(r.prefix.is_empty());
        cache.commit(
            NullModel::Bernoulli,
            7,
            r.eval_dirs,
            r.prefix,
            0,
            rows(5, 1),
        );
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.cached_worlds(), 5);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().worlds_simulated, 5);
    }

    #[test]
    fn covered_resume_moves_the_prefix_out_and_commit_extends_it() {
        let mut cache = WorldCache::new();
        let r = cache.resume(NullModel::Bernoulli, 7, &[TS]);
        cache.commit(
            NullModel::Bernoulli,
            7,
            r.eval_dirs,
            r.prefix,
            0,
            rows(5, 1),
        );
        let r = cache.resume(NullModel::Bernoulli, 7, &[TS]);
        assert_eq!(r.prefix.len(), 5);
        assert_eq!(
            cache.cached_worlds(),
            0,
            "the prefix is moved, not cloned; commit reinstalls it"
        );
        // The run consumed the prefix and simulated 3 more.
        cache.commit(
            NullModel::Bernoulli,
            7,
            r.eval_dirs,
            r.prefix,
            5,
            rows(3, 1),
        );
        assert_eq!(cache.class_worlds(NullModel::Bernoulli, 7), Some(8));
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().worlds_replayed, 5);
    }

    #[test]
    fn partial_replay_reinstalls_the_whole_prefix() {
        let mut cache = WorldCache::new();
        cache.commit(
            NullModel::Bernoulli,
            1,
            vec![TS],
            Vec::new(),
            0,
            rows(10, 1),
        );
        // A smaller-budget run stopped after 4 of the 10 cached worlds:
        // nothing fresh, the entry must keep its 10 rows.
        let r = cache.resume(NullModel::Bernoulli, 1, &[TS]);
        cache.commit(
            NullModel::Bernoulli,
            1,
            r.eval_dirs,
            r.prefix,
            4,
            Vec::new(),
        );
        assert_eq!(cache.class_worlds(NullModel::Bernoulli, 1), Some(10));
    }

    #[test]
    fn uncovered_direction_becomes_its_own_entry_and_then_hits() {
        let mut cache = WorldCache::new();
        cache.commit(NullModel::Bernoulli, 2, vec![TS], Vec::new(), 0, rows(6, 1));
        // HI is uncovered: cold, but evaluated as the union with the
        // widest entry so the new rows serve both directions.
        let r = cache.resume(NullModel::Bernoulli, 2, &[HI]);
        assert_eq!(r.eval_dirs, vec![TS, HI], "union keeps cached directions");
        assert!(r.prefix.is_empty(), "uncovered direction cannot replay");
        // A shorter re-simulation coexists with the longer old prefix…
        cache.commit(
            NullModel::Bernoulli,
            2,
            r.eval_dirs,
            r.prefix,
            0,
            rows(4, 2),
        );
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.class_worlds(NullModel::Bernoulli, 2), Some(6));
        // …and the SECOND short-budget HI request is now a pure hit —
        // uncovered-direction repeats must not re-simulate forever.
        let r2 = cache.resume(NullModel::Bernoulli, 2, &[HI]);
        assert_eq!(r2.prefix.len(), 4);
        cache.commit(
            NullModel::Bernoulli,
            2,
            r2.eval_dirs,
            r2.prefix,
            4,
            Vec::new(),
        );
        assert_eq!(cache.stats().hits, 1);
        // Extending the union entry past the old one: both survive
        // (pruning happens only when a NEW entry lands)…
        let r3 = cache.resume(NullModel::Bernoulli, 2, &[TS, HI]);
        assert_eq!(r3.prefix.len(), 4);
        cache.commit(
            NullModel::Bernoulli,
            2,
            r3.eval_dirs,
            r3.prefix,
            4,
            rows(3, 2),
        );
        assert_eq!(cache.entries(), 2);
        // …and the longest covering entry wins the next resume.
        let r4 = cache.resume(NullModel::Bernoulli, 2, &[TS]);
        assert_eq!(r4.prefix.len(), 7, "[TS,HI](7) out-lasts [TS](6)");
        cache.commit(
            NullModel::Bernoulli,
            2,
            r4.eval_dirs,
            r4.prefix,
            7,
            Vec::new(),
        );
    }

    #[test]
    fn subsumed_entries_are_pruned_when_a_wider_equal_length_entry_lands() {
        let mut cache = WorldCache::new();
        cache.commit(NullModel::Bernoulli, 5, vec![TS], Vec::new(), 0, rows(6, 1));
        let r = cache.resume(NullModel::Bernoulli, 5, &[HI]);
        // Union re-simulation reaches the old entry's length: the
        // narrower [TS] entry is subsumed and dropped.
        cache.commit(
            NullModel::Bernoulli,
            5,
            r.eval_dirs,
            r.prefix,
            0,
            rows(6, 2),
        );
        assert_eq!(cache.entries(), 1);
        let r2 = cache.resume(NullModel::Bernoulli, 5, &[TS, HI]);
        assert_eq!(r2.prefix.len(), 6);
        cache.commit(
            NullModel::Bernoulli,
            5,
            r2.eval_dirs,
            r2.prefix,
            6,
            Vec::new(),
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 2, "cold TS commit + uncovered HI");
    }

    #[test]
    fn classes_are_keyed_by_null_model_and_seed() {
        let mut cache = WorldCache::new();
        cache.commit(NullModel::Bernoulli, 3, vec![TS], Vec::new(), 0, rows(2, 1));
        cache.commit(
            NullModel::Permutation,
            3,
            vec![TS],
            Vec::new(),
            0,
            rows(3, 1),
        );
        cache.commit(NullModel::Bernoulli, 4, vec![TS], Vec::new(), 0, rows(4, 1));
        assert_eq!(cache.entries(), 3);
        assert_eq!(cache.cached_worlds(), 9);
        assert_eq!(cache.class_worlds(NullModel::Permutation, 3), Some(3));
        assert_eq!(cache.class_worlds(NullModel::Permutation, 4), None);
        cache.clear();
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.cached_worlds(), 0);
    }

    #[test]
    fn stats_display_summarises() {
        let mut cache = WorldCache::new();
        cache.commit(NullModel::Bernoulli, 1, vec![TS], Vec::new(), 0, rows(5, 1));
        let r = cache.resume(NullModel::Bernoulli, 1, &[TS]);
        cache.commit(
            NullModel::Bernoulli,
            1,
            r.eval_dirs,
            r.prefix,
            5,
            Vec::new(),
        );
        let line = cache.stats().to_string();
        assert!(line.contains("hits=1"), "{line}");
        assert!(line.contains("replayed=5"), "{line}");
    }
}
