//! Deviation direction for the audit (re-export of the statistics
//! substrate's type so users of this crate need not depend on
//! `sfstats` directly).
//!
//! * `TwoSided` — the paper's main setting (§3): the test "does not
//!   care for the direction of change of the statistic inside and
//!   outside a region".
//! * `Low` — §B.2's "red" regions: significantly *fewer* positives
//!   inside than outside (Figure 11).
//! * `High` — §B.2's "green" regions: significantly *more* positives
//!   inside (Figure 12).

pub use sfstats::pvalue::Direction;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_two_sided() {
        assert_eq!(Direction::default(), Direction::TwoSided);
    }
}
