//! Region counting and Monte Carlo world evaluation.
//!
//! The scan engine precomputes everything that is *world-invariant*:
//! the spatial index, each region's member-id list, and therefore every
//! `n(R)`. A Monte Carlo world then only needs to (a) draw labels from
//! the null model and (b) recount `p(R)` per region — a cache-friendly
//! sweep over the membership lists against a label bitset.
//!
//! # Pluggable substrates
//!
//! The engine is generic over its [`CountingSubstrate`]: any index
//! providing exact range counts and member-id enumeration can serve
//! the scan. Production callers pick a backend at runtime through
//! [`ScanEngine::build_with`] (driven by
//! [`AuditConfig::backend`](crate::config::AuditConfig)); library
//! users with a custom index use [`ScanEngine::from_index`]. Backends
//! are exact, so every choice produces **bit-identical** audits — the
//! cross-backend agreement tests pin that property.
//!
//! # Blocked world counting
//!
//! [`CountingStrategy::Blocked`] compiles the membership CSR into
//! word-aligned `(block, mask)` popcnt runs
//! ([`sfindex::BlockedMembership`]) under a Morton-order id layout, so
//! a world recount is a branch-free masked-popcount sweep instead of a
//! per-id bitset gather. Blocked engines generate worlds directly in
//! *layout space* (the RNG stream and the physical label of every
//! point are unchanged — only the bit position holding it moves), so
//! every `τ` is bit-identical to the scalar strategies.
//!
//! # Auto counting strategy
//!
//! [`CountingStrategy::Auto`] resolves Membership vs Requery from the
//! measured membership density at build time: with `M` regions over
//! `N` points, materialised id lists hold `Σ n(R)` of the `M·N`
//! possible entries (4 bytes each). Auto picks Membership while that
//! stays cheap (`Σ n(R) ≤ 2^26` ids, i.e. 256 MiB) and falls back to
//! Requery when the lists grow past the cap *or* past half the dense
//! `M·N` extreme on large inputs — the regime where replaying ids
//! loses its cache advantage and the memory bill dominates. When
//! Membership wins, Auto additionally compiles the blocked masks and
//! upgrades to [`CountingStrategy::Blocked`] if the measured mask
//! density (member ids per touched word) clears
//! [`AUTO_BLOCKED_MIN_IDS_PER_WORD`] — below that, the masks are so
//! sparse the popcnt sweep degenerates to one word per id and the
//! scalar gather is just as good.
//!
//! # World generation versions
//!
//! [`ScanEngine::generate_world_with`] draws a world under a versioned
//! generator ([`WorldGen`]): `Scalar` is the v1 one-RNG-value-per-point
//! stream; `Word` draws Bernoulli labels 64 at a time
//! ([`sfstats::bulk::BulkBernoulli`]) in canonical Morton-rank order,
//! in fixed [`GEN_CHUNK_WORDS`]-word chunks each drawn from its own
//! absolutely positioned substream ([`chunk_rng`], keyed by a single
//! tag value off the world stream) — whole-word stores straight into a
//! blocked engine's layout-space label blocks, a set-lane scatter for
//! identity-layout engines — and permutation worlds write the dense
//! majority side as whole words and Fisher–Yates-select only the
//! minority. Versions are statistically equivalent but consume the RNG
//! stream differently; within a version, every strategy and backend
//! produces bit-identical `τ` streams.
//!
//! # Sharded counting
//!
//! [`ScanEngine::with_shards`] partitions a blocked engine's
//! label-word axis into contiguous shards, each owning a clipped view
//! of the membership CSR;
//! [`ScanEngine::eval_world_into_sharded`] fans the per-world recount
//! across the shards and sums exact integer partials, and the chunked
//! `Word` generator fills label chunks in parallel
//! ([`ScanEngine::generate_world_par`]). Every `τ` is bit-identical to
//! the unsharded engine's for every shard count.
//!
//! # Count integrity
//!
//! The requery path trusts two *independent* answers from the
//! substrate: the aggregate `count(R).n` measured once at build
//! (world-invariant `n(R)`) and the per-world id enumeration behind
//! `count_with`. A substrate bug that makes them disagree would
//! silently corrupt every simulated `τ` in release builds, so engine
//! construction cross-validates them once per region — in every build
//! profile — and returns [`ScanError::CountIntegrity`] instead of an
//! engine rather than serve corrupt counts.

use crate::config::{CountingStrategy, KernelSelect, NullModel, Shards, WorldGen};
use crate::direction::Direction;
use crate::error::ScanError;
use crate::outcomes::SpatialOutcomes;
use crate::regions::RegionSet;
use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use sfindex::{
    morton_layout, shard_word_bounds, BitLabels, BlockedMembership, CountPair, CountingKernel,
    CountingSubstrate, IndexBackend, Membership, Substrate,
};
use sfstats::bulk::{BulkBernoulli, GEN_CHUNK_WORDS};
use sfstats::kernel::{Statistic, TauKernel};
use sfstats::rng::chunk_rng;
use std::cell::RefCell;

/// Membership id cap for [`CountingStrategy::Auto`]: 2^26 ids
/// (256 MiB of `u32`s).
const AUTO_MAX_MEMBERSHIP_IDS: u64 = 1 << 26;

/// Density threshold for [`CountingStrategy::Auto`] on large inputs:
/// above half the dense `M·N` extreme, requery wins on memory without
/// losing asymptotics.
const AUTO_DENSITY_CAP: f64 = 0.5;

/// When the *measured* membership total `Σ n(R)` is below this many
/// ids, Auto always takes Membership (density is irrelevant when the
/// materialized lists fit in cache).
const AUTO_SMALL_INPUT_IDS: u64 = 1 << 22;

/// Mask-density floor for [`CountingStrategy::Auto`] to upgrade a
/// membership engine to blocked counting: with fewer member ids per
/// touched word than this, the masked-popcount sweep reads about as
/// many words as the scalar gather reads ids and the compilation buys
/// nothing.
pub const AUTO_BLOCKED_MIN_IDS_PER_WORD: f64 = 4.0;

/// Largest capacity (in ids) the per-thread Fisher–Yates scratch
/// keeps between worlds: 2^22 ids = 16 MiB per worker thread. Audits
/// beyond this size re-allocate per world rather than pinning the
/// buffer for the thread's lifetime.
const FISHER_YATES_RETAIN_CAP: usize = 1 << 22;

thread_local! {
    /// Reusable partial-Fisher–Yates index buffer: permutation worlds
    /// need a `0..n` id array to sample exactly `P` positive positions;
    /// reusing one buffer per thread removes an `O(n)` allocation from
    /// every world while keeping results bit-identical (the buffer is
    /// deterministically re-initialised per world).
    static FISHER_YATES_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Result of scanning the *real* world: per-region statistics.
#[derive(Debug, Clone)]
pub struct RealScan {
    /// Per-region `(n(R), p(R))`.
    pub counts: Vec<CountPair>,
    /// Per-region log-likelihood ratios.
    pub llrs: Vec<f64>,
    /// The test statistic `τ = max LLR`.
    pub tau: f64,
    /// Index of the region attaining `τ`.
    pub best_index: usize,
}

/// The per-world counting structure actually in effect after strategy
/// resolution.
enum Counting {
    /// Scalar replay of the membership id lists.
    Membership(Membership),
    /// Masked-popcount sweep over blocked runs (Morton id layout).
    Blocked(Box<BlockedMembership>),
    /// Range query per region per world.
    Requery,
}

/// Precomputed scan state shared by the real-world pass and every
/// Monte Carlo world, generic over the counting substrate.
pub struct ScanEngine<I: CountingSubstrate = Substrate> {
    index: I,
    counting: Counting,
    regions: Vec<sfgeo::Region>,
    region_n: Vec<u64>,
    n_total: u64,
    p_total: u64,
    real_labels: Vec<bool>,
    /// The strategy actually in effect (`Auto` is resolved at build).
    resolved_strategy: CountingStrategy,
    /// [`WorldGen::Word`]'s canonical generation order, `rank → id`:
    /// worlds are always drawn in Morton-rank order, whatever the
    /// engine's storage layout, so the physical label of every point —
    /// and therefore every `τ` — is identical across strategies and
    /// backends. `None` for blocked engines, whose storage position
    /// *is* the Morton rank (lane `j` lands at bit `j` with no
    /// indirection); `Some` for identity-layout engines, which scatter
    /// rank `j`'s label to bit `order[j]`.
    word_order: Option<Vec<u32>>,
    /// Clipped per-shard counting views over the blocked compilation
    /// ([`BlockedMembership::clip_to_words`]), tiling the label-word
    /// axis. Empty when unsharded (non-blocked counting, or a shard
    /// count that resolved to 1) — see [`ScanEngine::with_shards`].
    shard_views: Vec<BlockedMembership>,
    /// The `(word_lo, word_hi)` window of each entry in `shard_views`.
    shard_bounds: Vec<(usize, usize)>,
    /// The popcount kernel the blocked sweeps run on — resolved from a
    /// [`KernelSelect`] at build (default `Auto`, the best kernel the
    /// CPU supports). Every kernel produces bit-identical counts, so
    /// this is a pure performance knob; non-blocked strategies ignore
    /// it (they have no dense word ranges to popcount).
    kernel: CountingKernel,
    /// The engine's *default* per-region test statistic, used by the
    /// statistic-less evaluation methods. Every evaluation path also
    /// has a `*_with` variant taking an explicit [`Statistic`], which
    /// the batched executor uses to serve mixed-statistic batches off
    /// one engine.
    statistic: Statistic,
}

impl ScanEngine<Substrate> {
    /// Builds the engine over the default backend
    /// ([`IndexBackend::KdTree`]): spatial index, membership lists or
    /// blocked masks (when the strategy asks for them),
    /// world-invariant `n(R)`.
    ///
    /// # Errors
    /// [`ScanError::CountIntegrity`] — the substrate's aggregate
    /// counts disagree with its id enumeration (see the module docs).
    pub fn build(
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        strategy: CountingStrategy,
    ) -> Result<Self, ScanError> {
        Self::build_with(outcomes, regions, IndexBackend::default(), strategy)
    }

    /// Builds the engine over the backend named by `backend`.
    ///
    /// # Errors
    /// [`ScanError::CountIntegrity`] — see [`ScanEngine::build`].
    pub fn build_with(
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        backend: IndexBackend,
        strategy: CountingStrategy,
    ) -> Result<Self, ScanError> {
        let labels = outcomes.bit_labels();
        let index = Substrate::build(backend, outcomes.points().to_vec(), labels);
        Self::from_index(index, outcomes, regions, strategy)
    }
}

impl<I: CountingSubstrate> ScanEngine<I> {
    /// Builds the engine over a caller-provided substrate (custom
    /// indexes plug in here).
    ///
    /// # Errors
    /// [`ScanError::CountIntegrity`] — the substrate's aggregate
    /// `count(R).n` disagrees with its member-id enumeration for some
    /// region. The requery world loop trusts both answers, so the
    /// engine cross-validates them here, once, in every build profile
    /// (a `debug_assert` alone would let the corruption through in
    /// release).
    ///
    /// # Panics
    /// Panics if the substrate indexes a different number of points
    /// than `outcomes` holds (programmer error, not data-dependent).
    pub fn from_index(
        index: I,
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        strategy: CountingStrategy,
    ) -> Result<Self, ScanError> {
        assert_eq!(
            index.len(),
            outcomes.len(),
            "substrate must index exactly the audited points"
        );
        let region_vec = regions.regions().to_vec();
        // World-invariant n(R). The Membership/Blocked paths read it
        // from the id lists they build anyway; Requery/Auto measure it
        // with one range-count query per region (for Auto that
        // measurement IS the membership density the resolution rule
        // decides on).
        let count_region_n =
            |index: &I| -> Vec<u64> { region_vec.iter().map(|r| index.count(r).n).collect() };
        let membership_region_n =
            |m: &Membership| -> Vec<u64> { (0..m.num_regions()).map(|r| m.n_of(r)).collect() };
        let build_membership = || Membership::build(&index, outcomes.len(), &region_vec);
        // The Morton id layout is computed once per build: blocked
        // compilations store worlds in it, and WorldGen::Word draws
        // every world in it (its canonical generation order), so even
        // identity-layout engines need the permutation at hand —
        // eagerly, because worldgen is a *request-level* knob: any
        // engine can be asked for a Word world at any time, and the
        // points needed to derive the layout lazily are not retained.
        // Cost for Scalar-only engines: one u32 sort + a 4n-byte
        // table, a small fraction of a build that already enumerates
        // every region's members for count integrity.
        let to_pos = morton_layout(outcomes.points());
        // Membership::build sorts and range-validates, but a substrate
        // that enumerates an id twice still gets through it — surface
        // that as a ScanError through the fallible build, not a panic.
        let compile_blocked = |m: &Membership| -> Result<Box<BlockedMembership>, ScanError> {
            BlockedMembership::compile_with_layout(m, to_pos.clone())
                .map(Box::new)
                .map_err(|e| ScanError::MembershipIntegrity {
                    reason: e.to_string(),
                })
        };
        let (resolved_strategy, counting, region_n) = match strategy {
            CountingStrategy::Membership => {
                let m = build_membership();
                // The other strategies validate the enumeration as a
                // side effect (blocked compilation rejects duplicates;
                // Requery/Auto cross-check aggregates). Scalar replay
                // consults nothing else, so check the one corruption
                // `Membership::build` cannot — duplicate visits —
                // directly on the sorted lists.
                validate_membership_unique(&m)?;
                let region_n = membership_region_n(&m);
                (
                    CountingStrategy::Membership,
                    Counting::Membership(m),
                    region_n,
                )
            }
            CountingStrategy::Blocked => {
                let m = build_membership();
                let region_n = membership_region_n(&m);
                let blocked = compile_blocked(&m)?;
                (
                    CountingStrategy::Blocked,
                    Counting::Blocked(blocked),
                    region_n,
                )
            }
            CountingStrategy::Requery => {
                let region_n = count_region_n(&index);
                validate_count_integrity(&index, &region_vec, &region_n)?;
                (CountingStrategy::Requery, Counting::Requery, region_n)
            }
            CountingStrategy::Auto => {
                let region_n = count_region_n(&index);
                let total_ids: u64 = region_n.iter().sum();
                let resolved = resolve_strategy(
                    strategy,
                    total_ids,
                    region_vec.len() as u64,
                    outcomes.len() as u64,
                );
                match resolved {
                    CountingStrategy::Membership => {
                        let m = build_membership();
                        // The aggregate counts that drove the density
                        // decision must agree with the enumeration the
                        // worlds will actually be counted with —
                        // otherwise scan_real and the Monte Carlo fold
                        // would silently use different n(R). Both
                        // vectors are already in hand; compare them.
                        let enumerated_n = membership_region_n(&m);
                        if let Some(r) =
                            (0..region_n.len()).find(|&r| region_n[r] != enumerated_n[r])
                        {
                            return Err(ScanError::CountIntegrity {
                                region: r,
                                aggregate_n: region_n[r],
                                enumerated_n: enumerated_n[r],
                            });
                        }
                        // The blocked upgrade: compile the masks and
                        // keep them only if the measured density says
                        // the popcnt sweep beats the scalar gather.
                        let blocked = compile_blocked(&m)?;
                        if blocked.ids_per_word() >= AUTO_BLOCKED_MIN_IDS_PER_WORD {
                            (
                                CountingStrategy::Blocked,
                                Counting::Blocked(blocked),
                                region_n,
                            )
                        } else {
                            (resolved, Counting::Membership(m), region_n)
                        }
                    }
                    _ => {
                        validate_count_integrity(&index, &region_vec, &region_n)?;
                        (resolved, Counting::Requery, region_n)
                    }
                }
            }
        };
        // Identity-layout engines scatter Word-generated ranks back to
        // ids; blocked engines read ranks as positions directly.
        let word_order = match &counting {
            Counting::Blocked(_) => None,
            _ => {
                let mut order = vec![0u32; to_pos.len()];
                for (id, &pos) in to_pos.iter().enumerate() {
                    order[pos as usize] = id as u32;
                }
                Some(order)
            }
        };
        Ok(ScanEngine {
            index,
            counting,
            regions: region_vec,
            region_n,
            n_total: outcomes.len() as u64,
            p_total: outcomes.positives(),
            real_labels: outcomes.labels().to_vec(),
            resolved_strategy,
            word_order,
            shard_views: Vec::new(),
            shard_bounds: Vec::new(),
            kernel: KernelSelect::Auto.resolve(),
            statistic: Statistic::BernoulliLlr,
        })
    }

    /// Partitions this engine's blocked counting structures into
    /// contiguous label-word shards (see [`Shards`]): each shard owns
    /// a clipped view of the membership CSR, and
    /// [`ScanEngine::eval_world_into_sharded`] sums per-shard popcnt
    /// partials in parallel. Only blocked-resolved engines have a word
    /// axis to shard; for other strategies — or when the count
    /// resolves to 1 — this is a no-op and the engine keeps the
    /// unsharded sweep. Results are bit-identical for every value.
    pub fn with_shards(mut self, shards: Shards) -> Self {
        self.shard_views.clear();
        self.shard_bounds.clear();
        if let Counting::Blocked(b) = &self.counting {
            let num_words = b.num_label_words();
            let k = shards.resolve(num_words);
            if k > 1 {
                let bounds = shard_word_bounds(num_words, k);
                self.shard_views = bounds
                    .iter()
                    .map(|&(lo, hi)| b.clip_to_words(lo, hi))
                    .collect();
                self.shard_bounds = bounds;
            }
        }
        self
    }

    /// Selects the popcount kernel the blocked counting sweeps run on
    /// (see [`KernelSelect`]): `Auto` resolves to the best kernel the
    /// CPU supports (verified by a build-time probe against the scalar
    /// reference), explicit SIMD selections degrade down the ladder
    /// when the feature is missing. Counts are exact integers under
    /// every kernel, so every selection is bit-identical — this knob
    /// moves only throughput. No-op for non-blocked strategies.
    pub fn with_kernel(mut self, select: KernelSelect) -> Self {
        self.kernel = select.resolve();
        self
    }

    /// The popcount kernel actually in effect after resolving the
    /// [`KernelSelect`] (never `Auto` — resolution happens at
    /// selection time).
    pub fn kernel(&self) -> CountingKernel {
        self.kernel
    }

    /// Sets the engine's default per-region test statistic (what the
    /// statistic-less evaluation methods compute; the `*_with`
    /// variants override it per call). Unlike `with_shards`/
    /// `with_kernel` this knob *changes results* — see [`Statistic`].
    pub fn with_statistic(mut self, statistic: Statistic) -> Self {
        self.statistic = statistic;
        self
    }

    /// The engine's default per-region test statistic.
    pub fn statistic(&self) -> Statistic {
        self.statistic
    }

    /// Number of shards the world-evaluation sweep fans out over
    /// (1 = unsharded).
    pub fn num_shards(&self) -> usize {
        self.shard_views.len().max(1)
    }

    /// The `(word_lo, word_hi)` windows of the engine's shards (empty
    /// when unsharded).
    pub fn shard_bounds(&self) -> &[(usize, usize)] {
        &self.shard_bounds
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.n_total as usize
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Global totals `(N, P)`.
    pub fn totals(&self) -> CountPair {
        CountPair {
            n: self.n_total,
            p: self.p_total,
        }
    }

    /// World-invariant region observation counts.
    pub fn region_n(&self) -> &[u64] {
        &self.region_n
    }

    /// Total membership ids `Σ n(R)` — the measured density numerator
    /// that [`CountingStrategy::Auto`] decides on.
    pub fn total_membership_ids(&self) -> u64 {
        self.region_n.iter().sum()
    }

    /// The strategy in effect after resolving
    /// [`CountingStrategy::Auto`] (never `Auto` itself).
    pub fn resolved_strategy(&self) -> CountingStrategy {
        self.resolved_strategy
    }

    /// Measured mask density of the blocked compilation (member ids
    /// per touched word), when this engine counts via blocked masks.
    /// This is the number the Auto upgrade rule compared against
    /// [`AUTO_BLOCKED_MIN_IDS_PER_WORD`].
    pub fn blocked_ids_per_word(&self) -> Option<f64> {
        self.blocked().map(BlockedMembership::ids_per_word)
    }

    /// The membership lists this engine replays per world, when the
    /// resolved strategy is [`CountingStrategy::Membership`].
    pub fn membership(&self) -> Option<&Membership> {
        match &self.counting {
            Counting::Membership(m) => Some(m),
            _ => None,
        }
    }

    /// The blocked mask compilation this engine sweeps per world, when
    /// the resolved strategy is [`CountingStrategy::Blocked`].
    pub fn blocked(&self) -> Option<&BlockedMembership> {
        match &self.counting {
            Counting::Blocked(b) => Some(b),
            _ => None,
        }
    }

    /// The substrate serving this engine's range counts.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Scans the real world: per-region counts, scores, and `τ`, with
    /// the engine's default statistic.
    pub fn scan_real(&self, direction: Direction) -> RealScan {
        self.scan_real_with(self.statistic, direction)
    }

    /// Scans the real world with an explicit statistic: per-region
    /// counts, scores, and `τ = max score`.
    pub fn scan_real_with(&self, statistic: Statistic, direction: Direction) -> RealScan {
        let counts: Vec<CountPair> = match &self.counting {
            Counting::Membership(m) => {
                let real_bits = BitLabels::from_bools(&self.real_labels);
                (0..self.regions.len())
                    .map(|r| m.count(r, &real_bits))
                    .collect()
            }
            Counting::Blocked(b) => {
                let real_bits = b.layout_labels(&self.real_labels);
                (0..self.regions.len())
                    .map(|r| CountPair {
                        n: b.n_of(r),
                        p: b.count(r, &real_bits),
                    })
                    .collect()
            }
            Counting::Requery => self.regions.iter().map(|r| self.index.count(r)).collect(),
        };
        let kernel = TauKernel::new(statistic, self.n_total, self.p_total);
        let mut llrs = Vec::with_capacity(counts.len());
        let mut tau = 0.0f64;
        let mut best_index = 0usize;
        for (i, c) in counts.iter().enumerate() {
            let llr = kernel.score(c.n, c.p, direction);
            if llr > tau {
                tau = llr;
                best_index = i;
            }
            llrs.push(llr);
        }
        RealScan {
            counts,
            llrs,
            tau,
            best_index,
        }
    }

    /// The bit position holding point `id`'s label in this engine's
    /// world layout: identity for the scalar strategies, the Morton
    /// rank for blocked engines.
    #[inline]
    fn world_position(&self, id: u32) -> usize {
        match &self.counting {
            Counting::Blocked(b) => b.position_of(id) as usize,
            _ => id as usize,
        }
    }

    /// Draws one alternate world with the v1 [`WorldGen::Scalar`]
    /// generator — shorthand for [`ScanEngine::generate_world_with`]
    /// with [`WorldGen::Scalar`] (the stream every released artifact
    /// was computed under).
    pub fn generate_world(&self, null_model: NullModel, rng: &mut ChaCha8Rng) -> BitLabels {
        self.generate_world_with(null_model, WorldGen::Scalar, rng)
    }

    /// Draws one alternate world's labels from the null model with the
    /// given generator version.
    ///
    /// * [`NullModel::Bernoulli`] — each label is `Bernoulli(ρ̂)`
    ///   (the paper's model; world totals vary).
    /// * [`NullModel::Permutation`] — a uniform permutation of the
    ///   observed labels (exactly `P` positives per world), sampled by
    ///   a partial Fisher–Yates over a reusable per-thread scratch
    ///   buffer (no per-world allocation).
    ///
    /// The returned bitset is in this engine's *world layout*: blocked
    /// engines place point `id`'s label at its Morton rank so the
    /// masked-popcount sweep reads dense words.
    ///
    /// **Generator versions.** [`WorldGen::Scalar`] draws one RNG
    /// value per point, in id order; [`WorldGen::Word`] draws
    /// Bernoulli labels 64 at a time ([`BulkBernoulli`]) in *Morton
    /// rank* order, chunked into absolutely positioned substreams (one
    /// tag draw from the world stream keys them all — see the module
    /// docs on world generation versions) — for blocked
    /// engines that is one whole-word store per 64 labels straight
    /// into the layout-space block array, with no per-bit writes;
    /// identity-layout engines scatter each drawn word's set lanes
    /// back to ids. Word permutation worlds select
    /// ranks by partial Fisher–Yates, initialising the dense majority
    /// side with whole-word writes and scattering only the minority
    /// (`min(P, N−P)` bits). The two versions consume the RNG stream
    /// differently, so they are distinct world classes — but *within*
    /// each version, the physical label of every point is identical
    /// across layouts, strategies, and backends (generation order is
    /// canonical: id order for Scalar, Morton-rank order for Word),
    /// which is what keeps every strategy's `τ` bit-identical.
    pub fn generate_world_with(
        &self,
        null_model: NullModel,
        worldgen: WorldGen,
        rng: &mut ChaCha8Rng,
    ) -> BitLabels {
        match worldgen {
            WorldGen::Scalar => self.generate_world_scalar(null_model, rng),
            WorldGen::Word => self.generate_world_word(null_model, rng),
        }
    }

    /// Draws one world like [`ScanEngine::generate_world_with`], with
    /// the generation work itself fanned out across the rayon pool
    /// when the generator admits it: blocked-layout Bernoulli
    /// [`WorldGen::Word`] worlds fill their label chunks in parallel
    /// (each chunk substream is positioned absolutely — see
    /// [`chunk_rng`]). Every other (generator, null model, layout)
    /// combination delegates to the sequential path: Fisher–Yates
    /// permutation draws couple sequentially by construction, Scalar
    /// is the pinned v1 stream, and the identity-layout scatter writes
    /// arbitrary bits. The returned labels are bit-identical to the
    /// sequential path's in every case.
    pub fn generate_world_par(
        &self,
        null_model: NullModel,
        worldgen: WorldGen,
        rng: &mut ChaCha8Rng,
    ) -> BitLabels {
        if worldgen != WorldGen::Word
            || null_model != NullModel::Bernoulli
            || self.word_order.is_some()
        {
            return self.generate_world_with(null_model, worldgen, rng);
        }
        let n = self.n_total as usize;
        let mut labels = BitLabels::zeros(n);
        let rho = self.p_total as f64 / self.n_total as f64;
        let sampler = BulkBernoulli::new(rho);
        let tag = rng.next_u64();
        labels
            .blocks_mut()
            .par_chunks_mut(GEN_CHUNK_WORDS)
            .enumerate()
            .for_each(|(c, words)| fill_chunk(&sampler, tag, c, words, n));
        labels
    }

    /// Draws only the label words `word_lo..word_hi` of one world —
    /// the shard-local generation a distributed count-partial worker
    /// runs: a worker owning a [`BlockedMembership::clip_to_words`]
    /// window regenerates exactly the words its clipped CSR can read,
    /// not the whole world.
    ///
    /// The window path applies to blocked-layout Bernoulli
    /// [`WorldGen::Word`] worlds, whose labels come from absolutely
    /// positioned chunk substreams ([`chunk_rng`]): the generator
    /// consumes the same single tag draw from `rng` as the full-world
    /// path and fills only the [`GEN_CHUNK_WORDS`]-aligned chunks
    /// overlapping the window, so every word **inside** the window is
    /// bit-identical to [`ScanEngine::generate_world_with`]'s. Words
    /// outside the requested chunks stay zero — callers must only read
    /// the window (a clipped counting view does by construction;
    /// window popcounts use [`BitLabels::count_ones_in_words`]).
    ///
    /// Every other (generator, null model, layout) combination couples
    /// its draws sequentially (Fisher–Yates permutation, the pinned v1
    /// Scalar stream, identity-layout scatter) and falls back to
    /// generating the full world — still deterministic in
    /// `(seed, world)`, so a re-dispatched span regenerates
    /// bit-identical labels; the window is then simply a view of it.
    pub fn generate_world_window(
        &self,
        null_model: NullModel,
        worldgen: WorldGen,
        rng: &mut ChaCha8Rng,
        word_lo: usize,
        word_hi: usize,
    ) -> BitLabels {
        if worldgen != WorldGen::Word
            || null_model != NullModel::Bernoulli
            || self.word_order.is_some()
        {
            return self.generate_world_with(null_model, worldgen, rng);
        }
        let n = self.n_total as usize;
        let num_words = n.div_ceil(64);
        let word_hi = word_hi.min(num_words);
        let mut labels = BitLabels::zeros(n);
        let rho = self.p_total as f64 / self.n_total as f64;
        let sampler = BulkBernoulli::new(rho);
        let tag = rng.next_u64();
        let c_lo = word_lo / GEN_CHUNK_WORDS;
        let c_hi = word_hi.div_ceil(GEN_CHUNK_WORDS);
        for c in c_lo..c_hi {
            let start = c * GEN_CHUNK_WORDS;
            let end = ((c + 1) * GEN_CHUNK_WORDS).min(num_words);
            fill_chunk(&sampler, tag, c, &mut labels.blocks_mut()[start..end], n);
        }
        labels
    }

    /// The v1 per-point generator (see
    /// [`ScanEngine::generate_world_with`]).
    fn generate_world_scalar(&self, null_model: NullModel, rng: &mut ChaCha8Rng) -> BitLabels {
        let n = self.n_total as usize;
        match null_model {
            NullModel::Bernoulli => {
                let rho = self.p_total as f64 / self.n_total as f64;
                let mut labels = BitLabels::zeros(n);
                for i in 0..n {
                    if rng.gen_bool(rho) {
                        labels.set(self.world_position(i as u32), true);
                    }
                }
                labels
            }
            NullModel::Permutation => {
                // Partial Fisher-Yates: choose exactly P positions.
                let p = self.p_total as usize;
                let mut labels = BitLabels::zeros(n);
                with_fisher_yates_scratch(n, |idx| {
                    for i in 0..p {
                        let j = rng.gen_range(i..n);
                        idx.swap(i, j);
                        labels.set(self.world_position(idx[i]), true);
                    }
                });
                labels
            }
        }
    }

    /// The v2 word-parallel generator (see
    /// [`ScanEngine::generate_world_with`]). Lane `j` of drawn word
    /// `w` is the label of Morton rank `64·w + j`; `word_order` maps
    /// ranks back to ids for identity-layout engines.
    ///
    /// Bernoulli worlds consume exactly **one** value from the world
    /// stream: a 64-bit *tag* keying the absolutely positioned chunk
    /// substreams ([`chunk_rng`]) the labels are actually drawn from,
    /// [`GEN_CHUNK_WORDS`] words per chunk. Chunk `c`'s substream does
    /// not depend on how many draws chunks `0..c` consumed, so chunks
    /// can fill sequentially, in parallel
    /// ([`ScanEngine::generate_world_par`]), or split across engine
    /// shards — all bit-identically.
    fn generate_world_word(&self, null_model: NullModel, rng: &mut ChaCha8Rng) -> BitLabels {
        let n = self.n_total as usize;
        let mut labels = BitLabels::zeros(n);
        match null_model {
            NullModel::Bernoulli => {
                let rho = self.p_total as f64 / self.n_total as f64;
                let sampler = BulkBernoulli::new(rho);
                let tag = rng.next_u64();
                match &self.word_order {
                    // Blocked storage: rank IS the bit position — fill
                    // the layout-space block array chunk by chunk.
                    None => {
                        for (c, words) in
                            labels.blocks_mut().chunks_mut(GEN_CHUNK_WORDS).enumerate()
                        {
                            fill_chunk(&sampler, tag, c, words, n);
                        }
                    }
                    // Identity storage: draw the same chunks into a
                    // scratch buffer and scatter each word's set lanes
                    // to their ids (the substreams — and therefore the
                    // per-point labels — are identical to the direct
                    // path's).
                    Some(order) => {
                        let mut buf = [0u64; GEN_CHUNK_WORDS];
                        let num_words = n.div_ceil(64);
                        for c in 0..num_words.div_ceil(GEN_CHUNK_WORDS) {
                            let nw = (num_words - c * GEN_CHUNK_WORDS).min(GEN_CHUNK_WORDS);
                            fill_chunk(&sampler, tag, c, &mut buf[..nw], n);
                            for (k, &word) in buf[..nw].iter().enumerate() {
                                let w = c * GEN_CHUNK_WORDS + k;
                                // fill_chunk already masked tail lanes.
                                let mut bits = word;
                                while bits != 0 {
                                    let rank = w * 64 + bits.trailing_zeros() as usize;
                                    labels.set(order[rank] as usize, true);
                                    bits &= bits - 1;
                                }
                            }
                        }
                    }
                }
            }
            NullModel::Permutation => {
                // Word-masked partial Fisher–Yates over ranks: write
                // the dense majority side as whole words, then select
                // and scatter only the minority side — min(P, N−P)
                // single-bit writes and RNG draws instead of P. The
                // layout/polarity dispatch is hoisted out of the
                // selection loop so each variant is a tight
                // monomorphic swap-and-set.
                let p = self.p_total as usize;
                let (select, dense_ones) = if 2 * p <= n {
                    (p, false)
                } else {
                    (n - p, true)
                };
                if dense_ones {
                    for w in 0..labels.num_blocks() {
                        labels.set_word(w, !0);
                    }
                }
                with_fisher_yates_scratch(n, |idx| match (&self.word_order, dense_ones) {
                    (None, false) => {
                        for i in 0..select {
                            let j = rng.gen_range(i..n);
                            idx.swap(i, j);
                            labels.set(idx[i] as usize, true);
                        }
                    }
                    (None, true) => {
                        for i in 0..select {
                            let j = rng.gen_range(i..n);
                            idx.swap(i, j);
                            labels.set(idx[i] as usize, false);
                        }
                    }
                    (Some(order), false) => {
                        for i in 0..select {
                            let j = rng.gen_range(i..n);
                            idx.swap(i, j);
                            labels.set(order[idx[i] as usize] as usize, true);
                        }
                    }
                    (Some(order), true) => {
                        for i in 0..select {
                            let j = rng.gen_range(i..n);
                            idx.swap(i, j);
                            labels.set(order[idx[i] as usize] as usize, false);
                        }
                    }
                });
            }
        }
        labels
    }

    /// Evaluates one world: recounts positives per region and returns
    /// that world's `τ` (computed against the world's own totals, as
    /// the statistic is a function of the observed data).
    ///
    /// `labels` must come from **this engine's**
    /// [`ScanEngine::generate_world`] (see the layout contract on
    /// [`ScanEngine::eval_world_into`]).
    pub fn eval_world(&self, labels: &BitLabels, direction: Direction) -> f64 {
        let mut tau = [0.0f64];
        self.eval_world_into(labels, &[direction], &mut tau);
        tau[0]
    }

    /// Evaluates one world for *several* directions at once, writing
    /// each direction's `τ` into `out`.
    ///
    /// Recounting `p(R)` per region is the expensive,
    /// direction-independent part of a world; the per-direction LLR is
    /// cheap arithmetic on the same `(n, p)` pair. Batched multi-audit
    /// serving exploits this: one counting pass serves every request
    /// direction sharing the world. Each `out[d]` is bit-identical to
    /// `eval_world(labels, directions[d])` — the single-direction path
    /// IS this one with a one-element slice.
    ///
    /// **Layout contract:** `labels` must be in this engine's world
    /// layout — i.e. produced by this engine's
    /// [`ScanEngine::generate_world`] (or by an engine with the same
    /// resolved strategy and dataset). Blocked-resolved engines
    /// (including [`CountingStrategy::Auto`] upgrades) store worlds in
    /// Morton id order; handing them an identity-layout bitset
    /// type-checks but counts the wrong bits. `BitLabels` carries no
    /// layout tag, so this cannot be asserted — keep world generation
    /// and evaluation on the same engine.
    ///
    /// # Panics
    /// Panics if `out.len() != directions.len()`, or if `labels` is
    /// not one bit per indexed point (a wrong-length world would
    /// silently undercount in release builds otherwise).
    pub fn eval_world_into(&self, labels: &BitLabels, directions: &[Direction], out: &mut [f64]) {
        self.eval_world_into_with(self.statistic, labels, directions, out)
    }

    /// [`ScanEngine::eval_world_into`] with an explicit statistic (the
    /// per-region score fold is the only statistic-dependent step; the
    /// counting is shared).
    pub fn eval_world_into_with(
        &self,
        statistic: Statistic,
        labels: &BitLabels,
        directions: &[Direction],
        out: &mut [f64],
    ) {
        assert_eq!(directions.len(), out.len(), "one output slot per direction");
        assert_eq!(
            labels.len(),
            self.n_total as usize,
            "world label set must be one bit per indexed point"
        );
        let p_world = labels.count_ones();
        let kernel = TauKernel::new(statistic, self.n_total, p_world);
        out.fill(0.0);
        let mut fold = |n_r: u64, p_r: u64| {
            for (tau, &direction) in out.iter_mut().zip(directions) {
                let llr = kernel.score(n_r, p_r, direction);
                if llr > *tau {
                    *tau = llr;
                }
            }
        };
        match &self.counting {
            Counting::Membership(m) => {
                for (r, &n_r) in self.region_n.iter().enumerate() {
                    if n_r == 0 {
                        continue;
                    }
                    let p_r = labels.count_at(m.members(r));
                    fold(n_r, p_r);
                }
            }
            Counting::Blocked(b) => {
                for (r, &n_r) in self.region_n.iter().enumerate() {
                    if n_r == 0 {
                        continue;
                    }
                    let p_r = b.count_with(r, labels, self.kernel);
                    fold(n_r, p_r);
                }
            }
            Counting::Requery => {
                for (region, &n_r) in self.regions.iter().zip(&self.region_n) {
                    if n_r == 0 {
                        continue;
                    }
                    let c = self.index.count_with(region, labels);
                    // Unreachable after the build-time integrity check
                    // (count_with's n is label-independent); kept as a
                    // debug-build tripwire only.
                    debug_assert_eq!(c.n, n_r, "region n must be world-invariant");
                    fold(c.n, c.p);
                }
            }
        }
    }

    /// Evaluates one world like [`ScanEngine::eval_world_into`], with
    /// the region recount fanned out across this engine's shards: one
    /// rayon task per shard computes every region's partial popcnt
    /// over its word window, then a sequential integer reduce sums the
    /// partials in shard order and the LLR fold visits regions exactly
    /// as the unsharded sweep does. Falls back to
    /// [`ScanEngine::eval_world_into`] when the engine has no shard
    /// views (non-blocked counting, or a shard count that resolved
    /// to 1).
    ///
    /// Each `τ` is **bit-identical** to the unsharded path: per-region
    /// partials are exact integers (summing them reassociates nothing
    /// but integer addition), and the fold replays the same
    /// region-order comparisons on the same `(n_r, p_r, N, P_world)`
    /// quadruples.
    pub fn eval_world_into_sharded(
        &self,
        labels: &BitLabels,
        directions: &[Direction],
        out: &mut [f64],
    ) {
        self.eval_world_into_sharded_with(self.statistic, labels, directions, out)
    }

    /// [`ScanEngine::eval_world_into_sharded`] with an explicit
    /// statistic.
    pub fn eval_world_into_sharded_with(
        &self,
        statistic: Statistic,
        labels: &BitLabels,
        directions: &[Direction],
        out: &mut [f64],
    ) {
        if self.shard_views.len() <= 1 {
            return self.eval_world_into_with(statistic, labels, directions, out);
        }
        assert_eq!(directions.len(), out.len(), "one output slot per direction");
        assert_eq!(
            labels.len(),
            self.n_total as usize,
            "world label set must be one bit per indexed point"
        );
        let partials: Vec<Vec<u64>> = (0..self.shard_views.len())
            .into_par_iter()
            .map(|s| {
                let mut counts = Vec::new();
                self.shard_views[s].count_all_into_with(labels, self.kernel, &mut counts);
                counts
            })
            .collect();
        let p_world = labels.count_ones();
        let kernel = TauKernel::new(statistic, self.n_total, p_world);
        out.fill(0.0);
        for (r, &n_r) in self.region_n.iter().enumerate() {
            if n_r == 0 {
                continue;
            }
            let p_r: u64 = partials.iter().map(|counts| counts[r]).sum();
            for (tau, &direction) in out.iter_mut().zip(directions) {
                let llr = kernel.score(n_r, p_r, direction);
                if llr > *tau {
                    *tau = llr;
                }
            }
        }
    }

    /// Evaluates a *batch* of worlds in one fused counting sweep,
    /// writing world `w`'s `τ` for `directions[d]` into
    /// `out[w * directions.len() + d]` (world-major — the layout the
    /// batched executor's span buffer already uses).
    ///
    /// Blocked engines count all `W` worlds per CSR pass
    /// ([`BlockedMembership::count_all_many_into`]): each run's
    /// `(block, mask)` pair is loaded **once** and ANDed against every
    /// world's block, so the CSR stream — the dominant memory traffic
    /// of a world recount — is read once per batch instead of once per
    /// world. Other strategies evaluate the worlds one at a time.
    ///
    /// Each `τ` is **bit-identical** to
    /// [`ScanEngine::eval_world_into`] on the same world: per-world
    /// counts are independent exact integers (fusion reorders no
    /// arithmetic within a world), and the LLR fold replays the same
    /// region-order comparisons per world.
    ///
    /// # Panics
    /// Panics if `out.len() != worlds.len() * directions.len()`, or if
    /// any world is not one bit per indexed point.
    pub fn eval_worlds_into(
        &self,
        worlds: &[&BitLabels],
        directions: &[Direction],
        out: &mut [f64],
    ) {
        self.eval_worlds_into_with(self.statistic, worlds, directions, out)
    }

    /// [`ScanEngine::eval_worlds_into`] with an explicit statistic.
    pub fn eval_worlds_into_with(
        &self,
        statistic: Statistic,
        worlds: &[&BitLabels],
        directions: &[Direction],
        out: &mut [f64],
    ) {
        assert_eq!(
            out.len(),
            worlds.len() * directions.len(),
            "one output slot per (world, direction)"
        );
        let stride = directions.len();
        if let Counting::Blocked(b) = &self.counting {
            for labels in worlds {
                assert_eq!(
                    labels.len(),
                    self.n_total as usize,
                    "world label set must be one bit per indexed point"
                );
            }
            let mut counts = Vec::new();
            b.count_all_many_into(worlds, self.kernel, &mut counts);
            self.fold_fused(statistic, worlds, &counts, directions, out);
        } else {
            for (labels, tau) in worlds.iter().zip(out.chunks_mut(stride)) {
                self.eval_world_into_with(statistic, labels, directions, tau);
            }
        }
    }

    /// Evaluates a batch of worlds like [`ScanEngine::eval_worlds_into`],
    /// with the fused recount fanned out across this engine's shards:
    /// one rayon task per shard runs the multi-world sweep over its
    /// clipped CSR view, then the exact integer partials are summed in
    /// shard order — combining the fused CSR amortisation with the
    /// sharded parallelism, bit-identical to both unfused paths. Falls
    /// back to [`ScanEngine::eval_worlds_into`] when unsharded.
    pub fn eval_worlds_into_sharded(
        &self,
        worlds: &[&BitLabels],
        directions: &[Direction],
        out: &mut [f64],
    ) {
        self.eval_worlds_into_sharded_with(self.statistic, worlds, directions, out)
    }

    /// [`ScanEngine::eval_worlds_into_sharded`] with an explicit
    /// statistic.
    pub fn eval_worlds_into_sharded_with(
        &self,
        statistic: Statistic,
        worlds: &[&BitLabels],
        directions: &[Direction],
        out: &mut [f64],
    ) {
        if self.shard_views.len() <= 1 {
            return self.eval_worlds_into_with(statistic, worlds, directions, out);
        }
        assert_eq!(
            out.len(),
            worlds.len() * directions.len(),
            "one output slot per (world, direction)"
        );
        for labels in worlds {
            assert_eq!(
                labels.len(),
                self.n_total as usize,
                "world label set must be one bit per indexed point"
            );
        }
        let partials: Vec<Vec<u64>> = (0..self.shard_views.len())
            .into_par_iter()
            .map(|s| {
                let mut counts = Vec::new();
                self.shard_views[s].count_all_many_into(worlds, self.kernel, &mut counts);
                counts
            })
            .collect();
        let width = worlds.len();
        let mut counts = vec![0u64; self.regions.len() * width];
        for shard in &partials {
            for (acc, &c) in counts.iter_mut().zip(shard) {
                *acc += c;
            }
        }
        self.fold_fused(statistic, worlds, &counts, directions, out);
    }

    /// The shared score fold over a fused count matrix
    /// (`counts[r * W + w]`): per world, replays exactly the
    /// region-order comparisons of [`ScanEngine::eval_world_into`]'s
    /// fold on the same `(n_r, p_r, N, P_world)` quadruples, through
    /// the same [`TauKernel`].
    fn fold_fused(
        &self,
        statistic: Statistic,
        worlds: &[&BitLabels],
        counts: &[u64],
        directions: &[Direction],
        out: &mut [f64],
    ) {
        let p_worlds: Vec<u64> = worlds.iter().map(|labels| labels.count_ones()).collect();
        self.fold_counts(statistic, &p_worlds, counts, directions, out);
    }

    /// The score fold over an already-reduced fused count matrix:
    /// `counts[r * W + w]` is `p(R_r)` under world `w`, `p_worlds[w]`
    /// that world's total positives. Per world, replays exactly the
    /// region-order comparisons of [`ScanEngine::eval_world_into`]'s
    /// fold on the same `(n_r, p_r, N, P_world)` quadruples, through
    /// the same [`TauKernel`] — so a caller that reduces exact integer
    /// count partials from *anywhere* (engine shards, shard-worker
    /// processes, a degraded local recount) and feeds them here gets
    /// `τ` values bit-identical to the in-process evaluation paths.
    /// This is the distributed coordinator's folding half.
    ///
    /// # Panics
    /// Panics when the matrix dimensions disagree with
    /// `p_worlds.len() × directions.len()` / the region count.
    pub fn fold_counts(
        &self,
        statistic: Statistic,
        p_worlds: &[u64],
        counts: &[u64],
        directions: &[Direction],
        out: &mut [f64],
    ) {
        let width = p_worlds.len();
        let stride = directions.len();
        assert_eq!(
            out.len(),
            width * stride,
            "one output slot per (world, direction)"
        );
        assert_eq!(
            counts.len(),
            self.region_n.len() * width,
            "one count per (region, world)"
        );
        out.fill(0.0);
        for (w, &p_world) in p_worlds.iter().enumerate() {
            let kernel = TauKernel::new(statistic, self.n_total, p_world);
            let tau = &mut out[w * stride..(w + 1) * stride];
            for (r, &n_r) in self.region_n.iter().enumerate() {
                if n_r == 0 {
                    continue;
                }
                let p_r = counts[r * width + w];
                for (tau, &direction) in tau.iter_mut().zip(directions) {
                    let llr = kernel.score(n_r, p_r, direction);
                    if llr > *tau {
                        *tau = llr;
                    }
                }
            }
        }
    }
}

/// Fills one generation chunk's label words ([`GEN_CHUNK_WORDS`] words
/// per chunk; the last chunk shorter) from the chunk's own substream
/// ([`chunk_rng`]). `n` is the engine's total label count — the
/// chunk-local count passed to [`BulkBernoulli::fill_words`] trims the
/// final word's tail lanes, preserving the zero-tail invariant of
/// [`BitLabels::blocks`].
fn fill_chunk(sampler: &BulkBernoulli, tag: u64, c: usize, words: &mut [u64], n: usize) {
    let n_chunk = (n - c * GEN_CHUNK_WORDS * 64).min(words.len() * 64);
    sampler.fill_words(&mut chunk_rng(tag, c as u64), words, n_chunk);
}

/// Runs `f` over the per-thread Fisher–Yates index buffer,
/// deterministically re-initialised to `0..n` (same contents as a
/// fresh `(0..n).collect()`, without the alloc), then bounds the
/// retained capacity so one huge audit cannot pin a worker-lifetime
/// buffer in a long-lived process.
fn with_fisher_yates_scratch(n: usize, f: impl FnOnce(&mut Vec<u32>)) {
    FISHER_YATES_SCRATCH.with(|scratch| {
        let mut idx = scratch.borrow_mut();
        idx.clear();
        idx.extend(0..n as u32);
        f(&mut idx);
        if idx.capacity() > FISHER_YATES_RETAIN_CAP {
            idx.clear();
            idx.shrink_to(FISHER_YATES_RETAIN_CAP);
        }
    });
}

/// Rejects member lists in which the substrate enumerated the same id
/// twice for one region: the scalar replay would silently double-count
/// `p(R)` (and inflate `n(R)`) in every world. Lists are sorted by
/// construction, so one adjacent-equality sweep suffices.
fn validate_membership_unique(m: &Membership) -> Result<(), ScanError> {
    for r in 0..m.num_regions() {
        if let Some(pair) = m.members(r).windows(2).find(|pair| pair[0] == pair[1]) {
            return Err(ScanError::MembershipIntegrity {
                reason: format!("region {r}: duplicate member id {}", pair[0]),
            });
        }
    }
    Ok(())
}

/// Cross-validates the substrate's aggregate region counts against its
/// member-id enumeration — the two answers the requery world loop
/// trusts to agree. Runs once per engine build, in release builds too
/// (this is the promotion of the old hot-loop `debug_assert`, moved
/// where it costs one enumeration instead of one branch per region per
/// world).
fn validate_count_integrity<I: CountingSubstrate>(
    index: &I,
    regions: &[sfgeo::Region],
    region_n: &[u64],
) -> Result<(), ScanError> {
    for (r, (region, &aggregate_n)) in regions.iter().zip(region_n).enumerate() {
        let mut enumerated_n = 0u64;
        index.for_each_in(region, &mut |_| enumerated_n += 1);
        if enumerated_n != aggregate_n {
            return Err(ScanError::CountIntegrity {
                region: r,
                aggregate_n,
                enumerated_n,
            });
        }
    }
    Ok(())
}

/// Resolves [`CountingStrategy::Auto`]'s membership-vs-requery leg
/// from the measured membership density (see the module docs for the
/// rule and rationale; the blocked upgrade happens afterwards, once
/// the masks exist to measure).
fn resolve_strategy(
    requested: CountingStrategy,
    total_ids: u64,
    num_regions: u64,
    num_points: u64,
) -> CountingStrategy {
    match requested {
        CountingStrategy::Membership | CountingStrategy::Requery | CountingStrategy::Blocked => {
            requested
        }
        CountingStrategy::Auto => {
            if total_ids <= AUTO_SMALL_INPUT_IDS {
                return CountingStrategy::Membership;
            }
            if total_ids > AUTO_MAX_MEMBERSHIP_IDS {
                return CountingStrategy::Requery;
            }
            let dense_extreme = (num_regions as f64) * (num_points as f64);
            let density = total_ids as f64 / dense_extreme.max(1.0);
            if density > AUTO_DENSITY_CAP {
                CountingStrategy::Requery
            } else {
                CountingStrategy::Membership
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::RegionSet;
    use sfgeo::{Point, Rect};

    /// 100 points on a 10x10 grid; left half positive.
    fn outcomes() -> SpatialOutcomes {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for iy in 0..10 {
            for ix in 0..10 {
                points.push(Point::new(ix as f64 + 0.5, iy as f64 + 0.5));
                labels.push(ix < 5);
            }
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn region_set() -> RegionSet {
        RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 2, 1)
    }

    #[test]
    fn real_scan_counts_are_exact() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let real = e.scan_real(Direction::TwoSided);
        // Left half: 50 obs, all positive. Right half: 50 obs, none.
        assert_eq!(real.counts[0], CountPair::new(50, 50));
        assert_eq!(real.counts[1], CountPair::new(50, 0));
        // Perfect split: LLR = N ln 2 (both halves deterministic vs rho=0.5).
        let expected = 100.0 * (2.0f64).ln();
        assert!((real.tau - expected).abs() < 1e-9, "tau {}", real.tau);
        assert!(real.llrs[0] > 0.0 && real.llrs[1] > 0.0);
    }

    #[test]
    fn membership_and_requery_agree() {
        let o = outcomes();
        let mem = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let req = ScanEngine::build(&o, &region_set(), CountingStrategy::Requery).unwrap();
        let a = mem.scan_real(Direction::TwoSided);
        let b = req.scan_real(Direction::TwoSided);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.llrs, b.llrs);
        // And for simulated worlds:
        let mut rng = sfstats::rng::world_rng(5, 0);
        let labels = mem.generate_world(NullModel::Bernoulli, &mut rng);
        let ta = mem.eval_world(&labels, Direction::TwoSided);
        let tb = req.eval_world(&labels, Direction::TwoSided);
        assert_eq!(ta, tb);
    }

    #[test]
    fn all_backends_produce_identical_scans_and_worlds() {
        let o = outcomes();
        let reference = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let ref_real = reference.scan_real(Direction::TwoSided);
        for backend in IndexBackend::ALL {
            for strategy in CountingStrategy::ALL {
                let e = ScanEngine::build_with(&o, &region_set(), backend, strategy).unwrap();
                let real = e.scan_real(Direction::TwoSided);
                assert_eq!(real.counts, ref_real.counts, "{backend} {strategy:?}");
                assert_eq!(real.llrs, ref_real.llrs, "{backend} {strategy:?}");
                assert_eq!(real.tau, ref_real.tau, "{backend} {strategy:?}");
                for world in 0..5 {
                    let mut rng = sfstats::rng::world_rng(9, world);
                    let labels = e.generate_world(NullModel::Permutation, &mut rng);
                    let mut ref_rng = sfstats::rng::world_rng(9, world);
                    let ref_labels = reference.generate_world(NullModel::Permutation, &mut ref_rng);
                    if e.resolved_strategy() == CountingStrategy::Blocked {
                        // Blocked engines store the same world in
                        // Morton layout: the label multiset (and every
                        // count) is unchanged, only bit positions move.
                        assert_eq!(labels.count_ones(), ref_labels.count_ones());
                    } else {
                        assert_eq!(labels, ref_labels, "worlds must not depend on backend");
                    }
                    assert_eq!(
                        e.eval_world(&labels, Direction::TwoSided),
                        reference.eval_world(&ref_labels, Direction::TwoSided),
                        "{backend} {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn auto_upgrades_dense_small_inputs_to_blocked() {
        // 100 grid points, two half-plane regions: the Morton layout
        // packs each half into a handful of words, so Auto's
        // membership pick upgrades to blocked counting.
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Auto).unwrap();
        assert_eq!(e.resolved_strategy(), CountingStrategy::Blocked);
        assert_eq!(e.total_membership_ids(), 100);
        assert!(
            e.blocked_ids_per_word().unwrap() >= AUTO_BLOCKED_MIN_IDS_PER_WORD,
            "density {:?}",
            e.blocked_ids_per_word()
        );
    }

    #[test]
    fn auto_keeps_membership_when_masks_are_sparse() {
        // One-point regions: every mask holds a single bit, so the
        // popcnt sweep cannot beat the scalar gather and Auto stays on
        // membership replay.
        let o = outcomes();
        let singles = RegionSet::from_regions(
            o.points()
                .iter()
                .step_by(7)
                .map(|p| sfgeo::Region::Rect(Rect::square(*p, 0.2)))
                .collect(),
        );
        let e = ScanEngine::build(&o, &singles, CountingStrategy::Auto).unwrap();
        assert_eq!(e.resolved_strategy(), CountingStrategy::Membership);
        assert!(e.blocked_ids_per_word().is_none());
    }

    #[test]
    fn blocked_strategy_matches_membership_taus() {
        let o = outcomes();
        let mem = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let blk = ScanEngine::build(&o, &region_set(), CountingStrategy::Blocked).unwrap();
        assert_eq!(blk.resolved_strategy(), CountingStrategy::Blocked);
        let a = mem.scan_real(Direction::TwoSided);
        let b = blk.scan_real(Direction::TwoSided);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.llrs, b.llrs);
        for null_model in [NullModel::Bernoulli, NullModel::Permutation] {
            for w in 0..10 {
                let mut rng = sfstats::rng::world_rng(31, w);
                let mem_world = mem.generate_world(null_model, &mut rng);
                let mut rng = sfstats::rng::world_rng(31, w);
                let blk_world = blk.generate_world(null_model, &mut rng);
                assert_eq!(mem_world.count_ones(), blk_world.count_ones());
                assert_eq!(
                    mem.eval_world(&mem_world, Direction::TwoSided),
                    blk.eval_world(&blk_world, Direction::TwoSided),
                    "{null_model:?} world {w}"
                );
            }
        }
    }

    #[test]
    fn every_kernel_selection_is_bit_identical() {
        let o = outcomes();
        let reference = ScanEngine::build(&o, &region_set(), CountingStrategy::Blocked).unwrap();
        let mut expected = Vec::new();
        for w in 0..10 {
            let mut rng = sfstats::rng::world_rng(47, w);
            let world = reference.generate_world(NullModel::Bernoulli, &mut rng);
            expected.push(reference.eval_world(&world, Direction::TwoSided));
        }
        for select in KernelSelect::ALL {
            let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Blocked)
                .unwrap()
                .with_kernel(select);
            // Whatever the selection degraded to must be runnable on
            // this CPU — resolution never hands back an unsupported
            // kernel.
            assert!(e.kernel().is_supported(), "{select} -> {}", e.kernel());
            for (w, &want) in expected.iter().enumerate() {
                let mut rng = sfstats::rng::world_rng(47, w as u64);
                let world = e.generate_world(NullModel::Bernoulli, &mut rng);
                assert_eq!(
                    e.eval_world(&world, Direction::TwoSided),
                    want,
                    "{select} world {w}"
                );
            }
        }
    }

    #[test]
    fn fused_world_batches_match_per_world_eval() {
        let o = outcomes();
        let directions = [Direction::TwoSided, Direction::High, Direction::Low];
        for strategy in [CountingStrategy::Blocked, CountingStrategy::Membership] {
            for shards in [Shards::Fixed(1), Shards::Fixed(3)] {
                let e = ScanEngine::build(&o, &region_set(), strategy)
                    .unwrap()
                    .with_shards(shards);
                for batch in [1usize, 3, 8, 11] {
                    let worlds: Vec<BitLabels> = (0..batch)
                        .map(|w| {
                            let mut rng = sfstats::rng::world_rng(53, w as u64);
                            e.generate_world(NullModel::Permutation, &mut rng)
                        })
                        .collect();
                    let refs: Vec<&BitLabels> = worlds.iter().collect();
                    let mut fused = vec![0.0f64; batch * directions.len()];
                    e.eval_worlds_into_sharded(&refs, &directions, &mut fused);
                    for (w, labels) in worlds.iter().enumerate() {
                        let mut single = vec![0.0f64; directions.len()];
                        e.eval_world_into_sharded(labels, &directions, &mut single);
                        assert_eq!(
                            &fused[w * directions.len()..(w + 1) * directions.len()],
                            &single[..],
                            "{strategy:?} {shards:?} batch {batch} world {w}"
                        );
                    }
                }
            }
        }
    }

    /// A substrate whose aggregate counts lie relative to its id
    /// enumeration — the corruption class the build-time integrity
    /// check exists to catch (in release builds, where a
    /// `debug_assert` would wave it through).
    struct LyingIndex {
        inner: sfindex::BruteForceIndex,
    }

    impl sfindex::RangeCount for LyingIndex {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn total(&self) -> CountPair {
            self.inner.total()
        }
        fn count(&self, region: &sfgeo::Region) -> CountPair {
            let c = self.inner.count(region);
            // Inflate n(R): enumeration will disagree.
            CountPair { n: c.n + 1, p: c.p }
        }
    }

    impl sfindex::PointVisit for LyingIndex {
        fn for_each_in(&self, region: &sfgeo::Region, visit: &mut dyn FnMut(u32)) {
            self.inner.for_each_in(region, visit)
        }
    }

    #[test]
    fn count_integrity_violation_is_rejected_at_build() {
        // Both strategies that consult aggregate counts must refuse a
        // lying substrate: Requery (worlds re-enumerate against the
        // aggregate n(R)) and Auto (the aggregate drives the density
        // decision but enumeration does the counting).
        let o = outcomes();
        for strategy in [CountingStrategy::Requery, CountingStrategy::Auto] {
            let index = LyingIndex {
                inner: sfindex::BruteForceIndex::build(o.points().to_vec(), o.bit_labels()),
            };
            let err = ScanEngine::from_index(index, &o, &region_set(), strategy)
                .err()
                .expect("a lying substrate must not produce an engine");
            // This must hold in release builds too — it replaced a
            // debug_assert in the world-evaluation hot path.
            assert!(
                matches!(
                    err,
                    ScanError::CountIntegrity {
                        region: 0,
                        aggregate_n: 51,
                        enumerated_n: 50,
                    }
                ),
                "unexpected error {err:?} for {strategy:?}"
            );
            assert!(err.to_string().contains("count integrity"));
        }
    }

    /// A substrate that enumerates an id twice — `Membership::build`
    /// sorts and range-checks but cannot reject duplicates, so the
    /// blocked compilation is the backstop.
    struct DoubleVisitIndex {
        inner: sfindex::BruteForceIndex,
    }

    impl sfindex::RangeCount for DoubleVisitIndex {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn total(&self) -> CountPair {
            self.inner.total()
        }
        fn count(&self, region: &sfgeo::Region) -> CountPair {
            self.inner.count(region)
        }
    }

    impl sfindex::PointVisit for DoubleVisitIndex {
        fn for_each_in(&self, region: &sfgeo::Region, visit: &mut dyn FnMut(u32)) {
            let mut first = true;
            self.inner.for_each_in(region, &mut |id| {
                if first {
                    // Repeat the first member of every region.
                    visit(id);
                    first = false;
                }
                visit(id);
            });
        }
    }

    #[test]
    fn duplicate_enumeration_is_an_error_not_a_panic() {
        let o = outcomes();
        for strategy in [CountingStrategy::Blocked, CountingStrategy::Membership] {
            let index = DoubleVisitIndex {
                inner: sfindex::BruteForceIndex::build(o.points().to_vec(), o.bit_labels()),
            };
            let err = ScanEngine::from_index(index, &o, &region_set(), strategy)
                .err()
                .expect("duplicate member ids must not count");
            assert!(
                matches!(err, ScanError::MembershipIntegrity { .. }),
                "unexpected error {err:?} for {strategy:?}"
            );
            assert!(err.to_string().contains("duplicate"));
        }
    }

    #[test]
    fn auto_resolution_rule() {
        use CountingStrategy::*;
        // Small inputs: always membership, even at density 1.
        assert_eq!(
            resolve_strategy(Auto, 1 << 20, 1 << 10, 1 << 10),
            Membership
        );
        // Over the absolute id cap: requery.
        assert_eq!(
            resolve_strategy(Auto, (1 << 26) + 1, 1 << 13, 1 << 20),
            Requery
        );
        // Large but sparse: membership.
        assert_eq!(
            resolve_strategy(Auto, 1 << 24, 1 << 10, 1 << 20),
            Membership
        );
        // Large and dense (> half of M*N): requery.
        assert_eq!(resolve_strategy(Auto, 1 << 24, 1 << 4, 1 << 20), Requery);
        // Explicit strategies pass through untouched.
        assert_eq!(resolve_strategy(Membership, u64::MAX, 1, 1), Membership);
        assert_eq!(resolve_strategy(Requery, 0, 1, 1), Requery);
        assert_eq!(resolve_strategy(Blocked, u64::MAX, 1, 1), Blocked);
    }

    /// 100 grid points, 70% positive — exercises the Word permutation
    /// generator's dense-majority complement path (`2P > N`).
    fn dense_outcomes() -> SpatialOutcomes {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for iy in 0..10 {
            for ix in 0..10 {
                points.push(Point::new(ix as f64 + 0.5, iy as f64 + 0.5));
                labels.push((ix + 10 * iy) % 10 < 7);
            }
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    #[test]
    fn word_generator_is_bit_identical_across_strategies_and_backends() {
        // The Word tentpole invariant: same (seed, null model) => same
        // per-point labels and same τ, whatever the storage layout,
        // counting strategy, or index backend.
        for o in [outcomes(), dense_outcomes()] {
            let reference =
                ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
            for backend in IndexBackend::ALL {
                for strategy in CountingStrategy::ALL {
                    let e = ScanEngine::build_with(&o, &region_set(), backend, strategy).unwrap();
                    for null_model in [NullModel::Bernoulli, NullModel::Permutation] {
                        for w in 0..5 {
                            let mut rng = sfstats::rng::world_rng(13, w);
                            let labels =
                                e.generate_world_with(null_model, WorldGen::Word, &mut rng);
                            let mut ref_rng = sfstats::rng::world_rng(13, w);
                            let ref_labels = reference.generate_world_with(
                                null_model,
                                WorldGen::Word,
                                &mut ref_rng,
                            );
                            assert_eq!(labels.count_ones(), ref_labels.count_ones());
                            if e.resolved_strategy() != CountingStrategy::Blocked {
                                assert_eq!(labels, ref_labels, "{backend} {strategy:?}");
                            }
                            assert_eq!(
                                e.eval_world(&labels, Direction::TwoSided),
                                reference.eval_world(&ref_labels, Direction::TwoSided),
                                "{backend} {strategy:?} {null_model:?} world {w}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn word_permutation_preserves_exact_totals_on_both_density_sides() {
        // Exactly P positives whether the generator scatters positives
        // (sparse side) or negatives (dense-majority complement side).
        for o in [outcomes(), dense_outcomes()] {
            for strategy in [CountingStrategy::Membership, CountingStrategy::Blocked] {
                let e = ScanEngine::build(&o, &region_set(), strategy).unwrap();
                for w in 0..20 {
                    let mut rng = sfstats::rng::world_rng(15, w);
                    let labels =
                        e.generate_world_with(NullModel::Permutation, WorldGen::Word, &mut rng);
                    assert_eq!(labels.count_ones(), o.positives(), "{strategy:?} world {w}");
                }
            }
        }
    }

    #[test]
    fn word_and_scalar_are_distinct_streams_but_same_distribution_family() {
        // Different RNG consumption => different worlds (why worldgen
        // is part of the world-class key); totals still hover around
        // the same ρ̂·N.
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let mut scalar_total = 0u64;
        let mut word_total = 0u64;
        let mut identical = true;
        for w in 0..40 {
            let mut rng = sfstats::rng::world_rng(17, w);
            let scalar = e.generate_world_with(NullModel::Bernoulli, WorldGen::Scalar, &mut rng);
            let mut rng = sfstats::rng::world_rng(17, w);
            let word = e.generate_world_with(NullModel::Bernoulli, WorldGen::Word, &mut rng);
            scalar_total += scalar.count_ones();
            word_total += word.count_ones();
            identical &= scalar == word;
        }
        assert!(!identical, "the two generators must not alias one stream");
        let (s, w) = (scalar_total as f64 / 4000.0, word_total as f64 / 4000.0);
        assert!((s - 0.5).abs() < 0.05, "scalar rate {s}");
        assert!((w - 0.5).abs() < 0.05, "word rate {w}");
    }

    #[test]
    fn word_generation_is_deterministic() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Blocked).unwrap();
        for null_model in [NullModel::Bernoulli, NullModel::Permutation] {
            let draws: Vec<BitLabels> = (0..3)
                .map(|_| {
                    let mut rng = sfstats::rng::world_rng(19, 4);
                    e.generate_world_with(null_model, WorldGen::Word, &mut rng)
                })
                .collect();
            assert_eq!(draws[0], draws[1]);
            assert_eq!(draws[1], draws[2]);
        }
    }

    #[test]
    fn sharded_eval_is_bit_identical_for_every_shard_count() {
        let dirs = [Direction::TwoSided, Direction::High, Direction::Low];
        for o in [outcomes(), dense_outcomes()] {
            let base = ScanEngine::build(&o, &region_set(), CountingStrategy::Blocked).unwrap();
            let num_words = o.len().div_ceil(64);
            for k in [1usize, 2, 3, 5, num_words, num_words + 7] {
                let sharded = ScanEngine::build(&o, &region_set(), CountingStrategy::Blocked)
                    .unwrap()
                    .with_shards(Shards::Fixed(k));
                assert!(sharded.num_shards() <= num_words.max(1));
                for null_model in [NullModel::Bernoulli, NullModel::Permutation] {
                    for worldgen in [WorldGen::Scalar, WorldGen::Word] {
                        for w in 0..5 {
                            let mut rng = sfstats::rng::world_rng(23, w);
                            let labels = base.generate_world_with(null_model, worldgen, &mut rng);
                            let mut expected = [0.0; 3];
                            base.eval_world_into(&labels, &dirs, &mut expected);
                            let mut got = [0.0; 3];
                            sharded.eval_world_into_sharded(&labels, &dirs, &mut got);
                            assert_eq!(
                                got, expected,
                                "shards={k} {null_model:?} {worldgen:?} world {w}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sharding_is_a_noop_off_the_blocked_path() {
        let o = outcomes();
        for strategy in [CountingStrategy::Membership, CountingStrategy::Requery] {
            let e = ScanEngine::build(&o, &region_set(), strategy)
                .unwrap()
                .with_shards(Shards::Fixed(4));
            assert_eq!(e.num_shards(), 1, "{strategy:?}");
            assert!(e.shard_bounds().is_empty());
        }
        // Resolving to a single shard keeps the unsharded sweep too.
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Blocked)
            .unwrap()
            .with_shards(Shards::Fixed(1));
        assert_eq!(e.num_shards(), 1);
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        for o in [outcomes(), dense_outcomes()] {
            for strategy in [CountingStrategy::Blocked, CountingStrategy::Membership] {
                let e = ScanEngine::build(&o, &region_set(), strategy).unwrap();
                for null_model in [NullModel::Bernoulli, NullModel::Permutation] {
                    for worldgen in [WorldGen::Scalar, WorldGen::Word] {
                        for w in 0..5 {
                            let mut rng = sfstats::rng::world_rng(27, w);
                            let seq = e.generate_world_with(null_model, worldgen, &mut rng);
                            let mut rng = sfstats::rng::world_rng(27, w);
                            let par = e.generate_world_par(null_model, worldgen, &mut rng);
                            assert_eq!(seq, par, "{strategy:?} {null_model:?} {worldgen:?} {w}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn word_bernoulli_consumes_exactly_one_world_draw() {
        // The chunked generator must advance the world stream by one
        // tag value and nothing else, whatever the engine layout —
        // that is what makes shard- and chunk-parallel generation
        // order-independent.
        let o = outcomes();
        for strategy in [CountingStrategy::Blocked, CountingStrategy::Membership] {
            let e = ScanEngine::build(&o, &region_set(), strategy).unwrap();
            let mut rng = sfstats::rng::world_rng(29, 0);
            let _ = e.generate_world_with(NullModel::Bernoulli, WorldGen::Word, &mut rng);
            let after: u64 = rng.gen();
            let mut reference = sfstats::rng::world_rng(29, 0);
            let _: u64 = reference.gen(); // the tag
            assert_eq!(after, reference.gen::<u64>(), "{strategy:?}");
        }
    }

    #[test]
    fn bernoulli_worlds_vary_in_totals() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let mut totals = std::collections::HashSet::new();
        for w in 0..20 {
            let mut rng = sfstats::rng::world_rng(1, w);
            let labels = e.generate_world(NullModel::Bernoulli, &mut rng);
            totals.insert(labels.count_ones());
        }
        assert!(totals.len() > 1, "Bernoulli worlds should vary in P");
    }

    #[test]
    fn permutation_worlds_preserve_totals() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        for w in 0..20 {
            let mut rng = sfstats::rng::world_rng(1, w);
            let labels = e.generate_world(NullModel::Permutation, &mut rng);
            assert_eq!(labels.count_ones(), o.positives());
        }
    }

    #[test]
    fn permutation_worlds_shuffle_positions() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let mut rng = sfstats::rng::world_rng(2, 0);
        let a = e.generate_world(NullModel::Permutation, &mut rng);
        let mut rng = sfstats::rng::world_rng(2, 1);
        let b = e.generate_world(NullModel::Permutation, &mut rng);
        assert_ne!(a, b, "different worlds must differ");
    }

    #[test]
    fn permutation_scratch_reuse_is_deterministic() {
        // Generating the same world repeatedly on one thread (dirty
        // scratch buffer) must give identical labels every time.
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let draws: Vec<BitLabels> = (0..3)
            .map(|_| {
                let mut rng = sfstats::rng::world_rng(4, 7);
                e.generate_world(NullModel::Permutation, &mut rng)
            })
            .collect();
        assert_eq!(draws[0], draws[1]);
        assert_eq!(draws[1], draws[2]);
        // And interleaving different worlds does not cross-contaminate.
        let mut rng = sfstats::rng::world_rng(4, 8);
        let other = e.generate_world(NullModel::Permutation, &mut rng);
        let mut rng = sfstats::rng::world_rng(4, 7);
        let again = e.generate_world(NullModel::Permutation, &mut rng);
        assert_ne!(other, draws[0]);
        assert_eq!(again, draws[0]);
    }

    #[test]
    fn multi_direction_eval_matches_single_direction() {
        let o = outcomes();
        let dirs = [Direction::TwoSided, Direction::High, Direction::Low];
        for strategy in [
            CountingStrategy::Membership,
            CountingStrategy::Requery,
            CountingStrategy::Blocked,
        ] {
            let e = ScanEngine::build(&o, &region_set(), strategy).unwrap();
            for w in 0..10 {
                let mut rng = sfstats::rng::world_rng(6, w);
                let labels = e.generate_world(NullModel::Bernoulli, &mut rng);
                let mut out = [0.0; 3];
                e.eval_world_into(&labels, &dirs, &mut out);
                for (tau, &d) in out.iter().zip(&dirs) {
                    assert_eq!(
                        *tau,
                        e.eval_world(&labels, d),
                        "world {w}, {d}, {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one output slot")]
    fn multi_direction_eval_validates_slots() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let labels = BitLabels::from_bools(o.labels());
        let mut out = [0.0; 1];
        e.eval_world_into(&labels, &[Direction::High, Direction::Low], &mut out);
    }

    #[test]
    #[should_panic(expected = "one bit per indexed point")]
    fn eval_world_rejects_wrong_length_labels() {
        // A 70-bit world over a 100-point engine occupies the same
        // number of blocks, so without the explicit length check the
        // tail ids would silently read zero — this must fail fast in
        // release builds too.
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let short = BitLabels::from_fn(70, |i| i % 2 == 0);
        let _ = e.eval_world(&short, Direction::TwoSided);
    }

    #[test]
    fn simulated_taus_are_small_for_fair_worlds() {
        // The real data is maximally unfair; simulated fair worlds must
        // have much smaller taus.
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        let real = e.scan_real(Direction::TwoSided);
        for w in 0..30 {
            let mut rng = sfstats::rng::world_rng(3, w);
            let labels = e.generate_world(NullModel::Bernoulli, &mut rng);
            let tau_w = e.eval_world(&labels, Direction::TwoSided);
            assert!(
                tau_w < real.tau * 0.5,
                "world {w}: tau {tau_w} vs real {}",
                real.tau
            );
        }
    }

    #[test]
    fn direction_filters_the_best_region() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership).unwrap();
        // Left half (index 0) is the HIGH region; right half is LOW.
        let high = e.scan_real(Direction::High);
        assert_eq!(high.best_index, 0);
        assert_eq!(high.llrs[1], 0.0);
        let low = e.scan_real(Direction::Low);
        assert_eq!(low.best_index, 1);
        assert_eq!(low.llrs[0], 0.0);
    }

    #[test]
    fn empty_regions_do_not_contribute() {
        let o = outcomes();
        let rs = RegionSet::from_regions(vec![
            sfgeo::Region::Rect(Rect::from_coords(50.0, 50.0, 60.0, 60.0)), // empty
            sfgeo::Region::Rect(Rect::from_coords(0.0, 0.0, 5.0, 10.0)),    // left half
        ]);
        let e = ScanEngine::build(&o, &rs, CountingStrategy::Membership).unwrap();
        let real = e.scan_real(Direction::TwoSided);
        assert_eq!(real.counts[0], CountPair::default());
        assert_eq!(real.llrs[0], 0.0);
        assert_eq!(real.best_index, 1);
    }
}
