//! Region counting and Monte Carlo world evaluation.
//!
//! The scan engine precomputes everything that is *world-invariant*:
//! the spatial index, each region's member-id list, and therefore every
//! `n(R)`. A Monte Carlo world then only needs to (a) draw labels from
//! the null model and (b) recount `p(R)` per region — a cache-friendly
//! sweep over the membership lists against a label bitset.

use crate::config::{CountingStrategy, NullModel};
use crate::direction::Direction;
use crate::outcomes::SpatialOutcomes;
use crate::regions::RegionSet;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use sfindex::{BitLabels, CountPair, KdTree, Membership, PointVisit, RangeCount};
use sfstats::llr::{bernoulli_llr_directed, Counts2x2};

/// Result of scanning the *real* world: per-region statistics.
#[derive(Debug, Clone)]
pub struct RealScan {
    /// Per-region `(n(R), p(R))`.
    pub counts: Vec<CountPair>,
    /// Per-region log-likelihood ratios.
    pub llrs: Vec<f64>,
    /// The test statistic `τ = max LLR`.
    pub tau: f64,
    /// Index of the region attaining `τ`.
    pub best_index: usize,
}

/// Precomputed scan state shared by the real-world pass and every
/// Monte Carlo world.
pub struct ScanEngine {
    index: KdTree,
    membership: Option<Membership>,
    regions: Vec<sfgeo::Region>,
    region_n: Vec<u64>,
    n_total: u64,
    p_total: u64,
    real_labels: Vec<bool>,
    strategy: CountingStrategy,
}

impl ScanEngine {
    /// Builds the engine: spatial index, membership lists (when the
    /// strategy asks for them), world-invariant `n(R)`.
    pub fn build(
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        strategy: CountingStrategy,
    ) -> Self {
        let labels = outcomes.bit_labels();
        let index = KdTree::build(outcomes.points().to_vec(), labels);
        let region_vec = regions.regions().to_vec();
        let membership = match strategy {
            CountingStrategy::Membership => {
                Some(Membership::build(&index, outcomes.len(), &region_vec))
            }
            CountingStrategy::Requery => None,
        };
        let region_n: Vec<u64> = match &membership {
            Some(m) => (0..m.num_regions()).map(|r| m.n_of(r)).collect(),
            None => region_vec.iter().map(|r| index.count(r).n).collect(),
        };
        ScanEngine {
            index,
            membership,
            regions: region_vec,
            region_n,
            n_total: outcomes.len() as u64,
            p_total: outcomes.positives(),
            real_labels: outcomes.labels().to_vec(),
            strategy,
        }
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.n_total as usize
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Global totals `(N, P)`.
    pub fn totals(&self) -> CountPair {
        CountPair {
            n: self.n_total,
            p: self.p_total,
        }
    }

    /// World-invariant region observation counts.
    pub fn region_n(&self) -> &[u64] {
        &self.region_n
    }

    /// Scans the real world: per-region counts, LLRs, and `τ`.
    pub fn scan_real(&self, direction: Direction) -> RealScan {
        let real_bits = BitLabels::from_bools(&self.real_labels);
        let counts: Vec<CountPair> = match (&self.membership, self.strategy) {
            (Some(m), _) => (0..self.regions.len())
                .map(|r| m.count(r, &real_bits))
                .collect(),
            (None, _) => self.regions.iter().map(|r| self.index.count(r)).collect(),
        };
        let mut llrs = Vec::with_capacity(counts.len());
        let mut tau = 0.0f64;
        let mut best_index = 0usize;
        for (i, c) in counts.iter().enumerate() {
            let llr = bernoulli_llr_directed(
                &Counts2x2::new(c.n, c.p, self.n_total, self.p_total),
                direction,
            );
            if llr > tau {
                tau = llr;
                best_index = i;
            }
            llrs.push(llr);
        }
        RealScan {
            counts,
            llrs,
            tau,
            best_index,
        }
    }

    /// Draws one alternate world's labels from the null model.
    ///
    /// * [`NullModel::Bernoulli`] — each label is `Bernoulli(ρ̂)`
    ///   (the paper's model; world totals vary).
    /// * [`NullModel::Permutation`] — a uniform permutation of the
    ///   observed labels (exactly `P` positives per world).
    pub fn generate_world(&self, null_model: NullModel, rng: &mut ChaCha8Rng) -> BitLabels {
        let n = self.n_total as usize;
        match null_model {
            NullModel::Bernoulli => {
                let rho = self.p_total as f64 / self.n_total as f64;
                BitLabels::from_fn(n, |_| rng.gen_bool(rho))
            }
            NullModel::Permutation => {
                // Partial Fisher-Yates: choose exactly P positions.
                let p = self.p_total as usize;
                let mut idx: Vec<u32> = (0..n as u32).collect();
                let mut labels = BitLabels::zeros(n);
                for i in 0..p {
                    let j = rng.gen_range(i..n);
                    idx.swap(i, j);
                    labels.set(idx[i] as usize, true);
                }
                labels
            }
        }
    }

    /// Evaluates one world: recounts positives per region and returns
    /// that world's `τ` (computed against the world's own totals, as
    /// the statistic is a function of the observed data).
    pub fn eval_world(&self, labels: &BitLabels, direction: Direction) -> f64 {
        let p_world = labels.count_ones();
        let mut tau = 0.0f64;
        match (&self.membership, self.strategy) {
            (Some(m), _) => {
                for (r, &n_r) in self.region_n.iter().enumerate() {
                    if n_r == 0 {
                        continue;
                    }
                    let p_r = labels.count_at(m.members(r));
                    let llr = bernoulli_llr_directed(
                        &Counts2x2::new(n_r, p_r, self.n_total, p_world),
                        direction,
                    );
                    if llr > tau {
                        tau = llr;
                    }
                }
            }
            (None, _) => {
                for (region, &n_r) in self.regions.iter().zip(&self.region_n) {
                    if n_r == 0 {
                        continue;
                    }
                    let c = self.index.count_with(region, labels);
                    debug_assert_eq!(c.n, n_r, "region n must be world-invariant");
                    let llr = bernoulli_llr_directed(
                        &Counts2x2::new(c.n, c.p, self.n_total, p_world),
                        direction,
                    );
                    if llr > tau {
                        tau = llr;
                    }
                }
            }
        }
        tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::RegionSet;
    use sfgeo::{Point, Rect};

    /// 100 points on a 10x10 grid; left half positive.
    fn outcomes() -> SpatialOutcomes {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for iy in 0..10 {
            for ix in 0..10 {
                points.push(Point::new(ix as f64 + 0.5, iy as f64 + 0.5));
                labels.push(ix < 5);
            }
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn region_set() -> RegionSet {
        RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 2, 1)
    }

    #[test]
    fn real_scan_counts_are_exact() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let real = e.scan_real(Direction::TwoSided);
        // Left half: 50 obs, all positive. Right half: 50 obs, none.
        assert_eq!(real.counts[0], CountPair::new(50, 50));
        assert_eq!(real.counts[1], CountPair::new(50, 0));
        // Perfect split: LLR = N ln 2 (both halves deterministic vs rho=0.5).
        let expected = 100.0 * (2.0f64).ln();
        assert!((real.tau - expected).abs() < 1e-9, "tau {}", real.tau);
        assert!(real.llrs[0] > 0.0 && real.llrs[1] > 0.0);
    }

    #[test]
    fn membership_and_requery_agree() {
        let o = outcomes();
        let mem = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let req = ScanEngine::build(&o, &region_set(), CountingStrategy::Requery);
        let a = mem.scan_real(Direction::TwoSided);
        let b = req.scan_real(Direction::TwoSided);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.llrs, b.llrs);
        // And for simulated worlds:
        let mut rng = sfstats::rng::world_rng(5, 0);
        let labels = mem.generate_world(NullModel::Bernoulli, &mut rng);
        let ta = mem.eval_world(&labels, Direction::TwoSided);
        let tb = req.eval_world(&labels, Direction::TwoSided);
        assert_eq!(ta, tb);
    }

    #[test]
    fn bernoulli_worlds_vary_in_totals() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let mut totals = std::collections::HashSet::new();
        for w in 0..20 {
            let mut rng = sfstats::rng::world_rng(1, w);
            let labels = e.generate_world(NullModel::Bernoulli, &mut rng);
            totals.insert(labels.count_ones());
        }
        assert!(totals.len() > 1, "Bernoulli worlds should vary in P");
    }

    #[test]
    fn permutation_worlds_preserve_totals() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        for w in 0..20 {
            let mut rng = sfstats::rng::world_rng(1, w);
            let labels = e.generate_world(NullModel::Permutation, &mut rng);
            assert_eq!(labels.count_ones(), o.positives());
        }
    }

    #[test]
    fn permutation_worlds_shuffle_positions() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let mut rng = sfstats::rng::world_rng(2, 0);
        let a = e.generate_world(NullModel::Permutation, &mut rng);
        let mut rng = sfstats::rng::world_rng(2, 1);
        let b = e.generate_world(NullModel::Permutation, &mut rng);
        assert_ne!(a, b, "different worlds must differ");
    }

    #[test]
    fn simulated_taus_are_small_for_fair_worlds() {
        // The real data is maximally unfair; simulated fair worlds must
        // have much smaller taus.
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let real = e.scan_real(Direction::TwoSided);
        for w in 0..30 {
            let mut rng = sfstats::rng::world_rng(3, w);
            let labels = e.generate_world(NullModel::Bernoulli, &mut rng);
            let tau_w = e.eval_world(&labels, Direction::TwoSided);
            assert!(
                tau_w < real.tau * 0.5,
                "world {w}: tau {tau_w} vs real {}",
                real.tau
            );
        }
    }

    #[test]
    fn direction_filters_the_best_region() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        // Left half (index 0) is the HIGH region; right half is LOW.
        let high = e.scan_real(Direction::High);
        assert_eq!(high.best_index, 0);
        assert_eq!(high.llrs[1], 0.0);
        let low = e.scan_real(Direction::Low);
        assert_eq!(low.best_index, 1);
        assert_eq!(low.llrs[0], 0.0);
    }

    #[test]
    fn empty_regions_do_not_contribute() {
        let o = outcomes();
        let rs = RegionSet::from_regions(vec![
            sfgeo::Region::Rect(Rect::from_coords(50.0, 50.0, 60.0, 60.0)), // empty
            sfgeo::Region::Rect(Rect::from_coords(0.0, 0.0, 5.0, 10.0)),    // left half
        ]);
        let e = ScanEngine::build(&o, &rs, CountingStrategy::Membership);
        let real = e.scan_real(Direction::TwoSided);
        assert_eq!(real.counts[0], CountPair::default());
        assert_eq!(real.llrs[0], 0.0);
        assert_eq!(real.best_index, 1);
    }
}
