//! Region counting and Monte Carlo world evaluation.
//!
//! The scan engine precomputes everything that is *world-invariant*:
//! the spatial index, each region's member-id list, and therefore every
//! `n(R)`. A Monte Carlo world then only needs to (a) draw labels from
//! the null model and (b) recount `p(R)` per region — a cache-friendly
//! sweep over the membership lists against a label bitset.
//!
//! # Pluggable substrates
//!
//! The engine is generic over its [`CountingSubstrate`]: any index
//! providing exact range counts and member-id enumeration can serve
//! the scan. Production callers pick a backend at runtime through
//! [`ScanEngine::build_with`] (driven by
//! [`AuditConfig::backend`](crate::config::AuditConfig)); library
//! users with a custom index use [`ScanEngine::from_index`]. Backends
//! are exact, so every choice produces **bit-identical** audits — the
//! cross-backend agreement tests pin that property.
//!
//! # Auto counting strategy
//!
//! [`CountingStrategy::Auto`] resolves Membership vs Requery from the
//! measured membership density at build time: with `M` regions over
//! `N` points, materialised id lists hold `Σ n(R)` of the `M·N`
//! possible entries (4 bytes each). Auto picks Membership while that
//! stays cheap (`Σ n(R) ≤ 2^26` ids, i.e. 256 MiB) and falls back to
//! Requery when the lists grow past the cap *or* past half the dense
//! `M·N` extreme on large inputs — the regime where replaying ids
//! loses its cache advantage and the memory bill dominates.

use crate::config::{CountingStrategy, NullModel};
use crate::direction::Direction;
use crate::outcomes::SpatialOutcomes;
use crate::regions::RegionSet;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use sfindex::{BitLabels, CountPair, CountingSubstrate, IndexBackend, Membership, Substrate};
use sfstats::llr::{bernoulli_llr_directed, Counts2x2};
use std::cell::RefCell;

/// Membership id cap for [`CountingStrategy::Auto`]: 2^26 ids
/// (256 MiB of `u32`s).
const AUTO_MAX_MEMBERSHIP_IDS: u64 = 1 << 26;

/// Density threshold for [`CountingStrategy::Auto`] on large inputs:
/// above half the dense `M·N` extreme, requery wins on memory without
/// losing asymptotics.
const AUTO_DENSITY_CAP: f64 = 0.5;

/// When the *measured* membership total `Σ n(R)` is below this many
/// ids, Auto always takes Membership (density is irrelevant when the
/// materialized lists fit in cache).
const AUTO_SMALL_INPUT_IDS: u64 = 1 << 22;

/// Largest capacity (in ids) the per-thread Fisher–Yates scratch
/// keeps between worlds: 2^22 ids = 16 MiB per worker thread. Audits
/// beyond this size re-allocate per world rather than pinning the
/// buffer for the thread's lifetime.
const FISHER_YATES_RETAIN_CAP: usize = 1 << 22;

thread_local! {
    /// Reusable partial-Fisher–Yates index buffer: permutation worlds
    /// need a `0..n` id array to sample exactly `P` positive positions;
    /// reusing one buffer per thread removes an `O(n)` allocation from
    /// every world while keeping results bit-identical (the buffer is
    /// deterministically re-initialised per world).
    static FISHER_YATES_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Result of scanning the *real* world: per-region statistics.
#[derive(Debug, Clone)]
pub struct RealScan {
    /// Per-region `(n(R), p(R))`.
    pub counts: Vec<CountPair>,
    /// Per-region log-likelihood ratios.
    pub llrs: Vec<f64>,
    /// The test statistic `τ = max LLR`.
    pub tau: f64,
    /// Index of the region attaining `τ`.
    pub best_index: usize,
}

/// Precomputed scan state shared by the real-world pass and every
/// Monte Carlo world, generic over the counting substrate.
pub struct ScanEngine<I: CountingSubstrate = Substrate> {
    index: I,
    membership: Option<Membership>,
    regions: Vec<sfgeo::Region>,
    region_n: Vec<u64>,
    n_total: u64,
    p_total: u64,
    real_labels: Vec<bool>,
    /// The strategy actually in effect (`Auto` is resolved at build).
    resolved_strategy: CountingStrategy,
}

impl ScanEngine<Substrate> {
    /// Builds the engine over the default backend
    /// ([`IndexBackend::KdTree`]): spatial index, membership lists
    /// (when the strategy asks for them), world-invariant `n(R)`.
    pub fn build(
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        strategy: CountingStrategy,
    ) -> Self {
        Self::build_with(outcomes, regions, IndexBackend::default(), strategy)
    }

    /// Builds the engine over the backend named by `backend`.
    pub fn build_with(
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        backend: IndexBackend,
        strategy: CountingStrategy,
    ) -> Self {
        let labels = outcomes.bit_labels();
        let index = Substrate::build(backend, outcomes.points().to_vec(), labels);
        Self::from_index(index, outcomes, regions, strategy)
    }
}

impl<I: CountingSubstrate> ScanEngine<I> {
    /// Builds the engine over a caller-provided substrate (custom
    /// indexes plug in here).
    pub fn from_index(
        index: I,
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        strategy: CountingStrategy,
    ) -> Self {
        assert_eq!(
            index.len(),
            outcomes.len(),
            "substrate must index exactly the audited points"
        );
        let region_vec = regions.regions().to_vec();
        // World-invariant n(R). The Membership path reads it from the
        // id lists it builds anyway; Requery/Auto measure it with one
        // range-count query per region (for Auto that measurement IS
        // the membership density the resolution rule decides on).
        let count_region_n =
            |index: &I| -> Vec<u64> { region_vec.iter().map(|r| index.count(r).n).collect() };
        let membership_region_n =
            |m: &Membership| -> Vec<u64> { (0..m.num_regions()).map(|r| m.n_of(r)).collect() };
        let (resolved_strategy, membership, region_n) = match strategy {
            CountingStrategy::Membership => {
                let m = Membership::build(&index, outcomes.len(), &region_vec);
                let region_n = membership_region_n(&m);
                (CountingStrategy::Membership, Some(m), region_n)
            }
            CountingStrategy::Requery => (CountingStrategy::Requery, None, count_region_n(&index)),
            CountingStrategy::Auto => {
                let region_n = count_region_n(&index);
                let total_ids: u64 = region_n.iter().sum();
                let resolved = resolve_strategy(
                    strategy,
                    total_ids,
                    region_vec.len() as u64,
                    outcomes.len() as u64,
                );
                match resolved {
                    CountingStrategy::Membership => {
                        let m = Membership::build(&index, outcomes.len(), &region_vec);
                        (resolved, Some(m), region_n)
                    }
                    _ => (resolved, None, region_n),
                }
            }
        };
        ScanEngine {
            index,
            membership,
            regions: region_vec,
            region_n,
            n_total: outcomes.len() as u64,
            p_total: outcomes.positives(),
            real_labels: outcomes.labels().to_vec(),
            resolved_strategy,
        }
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.n_total as usize
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Global totals `(N, P)`.
    pub fn totals(&self) -> CountPair {
        CountPair {
            n: self.n_total,
            p: self.p_total,
        }
    }

    /// World-invariant region observation counts.
    pub fn region_n(&self) -> &[u64] {
        &self.region_n
    }

    /// Total membership ids `Σ n(R)` — the measured density numerator
    /// that [`CountingStrategy::Auto`] decides on.
    pub fn total_membership_ids(&self) -> u64 {
        self.region_n.iter().sum()
    }

    /// The strategy in effect after resolving
    /// [`CountingStrategy::Auto`] (never `Auto` itself).
    pub fn resolved_strategy(&self) -> CountingStrategy {
        self.resolved_strategy
    }

    /// The substrate serving this engine's range counts.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Scans the real world: per-region counts, LLRs, and `τ`.
    pub fn scan_real(&self, direction: Direction) -> RealScan {
        let real_bits = BitLabels::from_bools(&self.real_labels);
        let counts: Vec<CountPair> = match &self.membership {
            Some(m) => (0..self.regions.len())
                .map(|r| m.count(r, &real_bits))
                .collect(),
            None => self.regions.iter().map(|r| self.index.count(r)).collect(),
        };
        let mut llrs = Vec::with_capacity(counts.len());
        let mut tau = 0.0f64;
        let mut best_index = 0usize;
        for (i, c) in counts.iter().enumerate() {
            let llr = bernoulli_llr_directed(
                &Counts2x2::new(c.n, c.p, self.n_total, self.p_total),
                direction,
            );
            if llr > tau {
                tau = llr;
                best_index = i;
            }
            llrs.push(llr);
        }
        RealScan {
            counts,
            llrs,
            tau,
            best_index,
        }
    }

    /// Draws one alternate world's labels from the null model.
    ///
    /// * [`NullModel::Bernoulli`] — each label is `Bernoulli(ρ̂)`
    ///   (the paper's model; world totals vary).
    /// * [`NullModel::Permutation`] — a uniform permutation of the
    ///   observed labels (exactly `P` positives per world), sampled by
    ///   a partial Fisher–Yates over a reusable per-thread scratch
    ///   buffer (no per-world allocation).
    pub fn generate_world(&self, null_model: NullModel, rng: &mut ChaCha8Rng) -> BitLabels {
        let n = self.n_total as usize;
        match null_model {
            NullModel::Bernoulli => {
                let rho = self.p_total as f64 / self.n_total as f64;
                BitLabels::from_fn(n, |_| rng.gen_bool(rho))
            }
            NullModel::Permutation => {
                // Partial Fisher-Yates: choose exactly P positions.
                let p = self.p_total as usize;
                let mut labels = BitLabels::zeros(n);
                FISHER_YATES_SCRATCH.with(|scratch| {
                    let mut idx = scratch.borrow_mut();
                    // Deterministic re-init per world: same contents as
                    // a fresh `(0..n).collect()`, without the alloc.
                    idx.clear();
                    idx.extend(0..n as u32);
                    for i in 0..p {
                        let j = rng.gen_range(i..n);
                        idx.swap(i, j);
                        labels.set(idx[i] as usize, true);
                    }
                    // Don't let one huge audit pin a worker-lifetime
                    // buffer: long-lived processes serve many engines.
                    if idx.capacity() > FISHER_YATES_RETAIN_CAP {
                        idx.clear();
                        idx.shrink_to(FISHER_YATES_RETAIN_CAP);
                    }
                });
                labels
            }
        }
    }

    /// Evaluates one world: recounts positives per region and returns
    /// that world's `τ` (computed against the world's own totals, as
    /// the statistic is a function of the observed data).
    pub fn eval_world(&self, labels: &BitLabels, direction: Direction) -> f64 {
        let mut tau = [0.0f64];
        self.eval_world_into(labels, &[direction], &mut tau);
        tau[0]
    }

    /// Evaluates one world for *several* directions at once, writing
    /// each direction's `τ` into `out`.
    ///
    /// Recounting `p(R)` per region is the expensive,
    /// direction-independent part of a world; the per-direction LLR is
    /// cheap arithmetic on the same `(n, p)` pair. Batched multi-audit
    /// serving exploits this: one counting pass serves every request
    /// direction sharing the world. Each `out[d]` is bit-identical to
    /// `eval_world(labels, directions[d])` — the single-direction path
    /// IS this one with a one-element slice.
    ///
    /// # Panics
    /// Panics if `out.len() != directions.len()`.
    pub fn eval_world_into(&self, labels: &BitLabels, directions: &[Direction], out: &mut [f64]) {
        assert_eq!(directions.len(), out.len(), "one output slot per direction");
        let p_world = labels.count_ones();
        out.fill(0.0);
        let mut fold = |n_r: u64, p_r: u64| {
            for (tau, &direction) in out.iter_mut().zip(directions) {
                let llr = bernoulli_llr_directed(
                    &Counts2x2::new(n_r, p_r, self.n_total, p_world),
                    direction,
                );
                if llr > *tau {
                    *tau = llr;
                }
            }
        };
        match &self.membership {
            Some(m) => {
                for (r, &n_r) in self.region_n.iter().enumerate() {
                    if n_r == 0 {
                        continue;
                    }
                    let p_r = labels.count_at(m.members(r));
                    fold(n_r, p_r);
                }
            }
            None => {
                for (region, &n_r) in self.regions.iter().zip(&self.region_n) {
                    if n_r == 0 {
                        continue;
                    }
                    let c = self.index.count_with(region, labels);
                    debug_assert_eq!(c.n, n_r, "region n must be world-invariant");
                    fold(c.n, c.p);
                }
            }
        }
    }
}

/// Resolves [`CountingStrategy::Auto`] from the measured membership
/// density (see the module docs for the rule and rationale).
fn resolve_strategy(
    requested: CountingStrategy,
    total_ids: u64,
    num_regions: u64,
    num_points: u64,
) -> CountingStrategy {
    match requested {
        CountingStrategy::Membership | CountingStrategy::Requery => requested,
        CountingStrategy::Auto => {
            if total_ids <= AUTO_SMALL_INPUT_IDS {
                return CountingStrategy::Membership;
            }
            if total_ids > AUTO_MAX_MEMBERSHIP_IDS {
                return CountingStrategy::Requery;
            }
            let dense_extreme = (num_regions as f64) * (num_points as f64);
            let density = total_ids as f64 / dense_extreme.max(1.0);
            if density > AUTO_DENSITY_CAP {
                CountingStrategy::Requery
            } else {
                CountingStrategy::Membership
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::RegionSet;
    use sfgeo::{Point, Rect};

    /// 100 points on a 10x10 grid; left half positive.
    fn outcomes() -> SpatialOutcomes {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for iy in 0..10 {
            for ix in 0..10 {
                points.push(Point::new(ix as f64 + 0.5, iy as f64 + 0.5));
                labels.push(ix < 5);
            }
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn region_set() -> RegionSet {
        RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 2, 1)
    }

    #[test]
    fn real_scan_counts_are_exact() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let real = e.scan_real(Direction::TwoSided);
        // Left half: 50 obs, all positive. Right half: 50 obs, none.
        assert_eq!(real.counts[0], CountPair::new(50, 50));
        assert_eq!(real.counts[1], CountPair::new(50, 0));
        // Perfect split: LLR = N ln 2 (both halves deterministic vs rho=0.5).
        let expected = 100.0 * (2.0f64).ln();
        assert!((real.tau - expected).abs() < 1e-9, "tau {}", real.tau);
        assert!(real.llrs[0] > 0.0 && real.llrs[1] > 0.0);
    }

    #[test]
    fn membership_and_requery_agree() {
        let o = outcomes();
        let mem = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let req = ScanEngine::build(&o, &region_set(), CountingStrategy::Requery);
        let a = mem.scan_real(Direction::TwoSided);
        let b = req.scan_real(Direction::TwoSided);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.llrs, b.llrs);
        // And for simulated worlds:
        let mut rng = sfstats::rng::world_rng(5, 0);
        let labels = mem.generate_world(NullModel::Bernoulli, &mut rng);
        let ta = mem.eval_world(&labels, Direction::TwoSided);
        let tb = req.eval_world(&labels, Direction::TwoSided);
        assert_eq!(ta, tb);
    }

    #[test]
    fn all_backends_produce_identical_scans_and_worlds() {
        let o = outcomes();
        let reference = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let ref_real = reference.scan_real(Direction::TwoSided);
        for backend in IndexBackend::ALL {
            for strategy in [
                CountingStrategy::Membership,
                CountingStrategy::Requery,
                CountingStrategy::Auto,
            ] {
                let e = ScanEngine::build_with(&o, &region_set(), backend, strategy);
                let real = e.scan_real(Direction::TwoSided);
                assert_eq!(real.counts, ref_real.counts, "{backend} {strategy:?}");
                assert_eq!(real.llrs, ref_real.llrs, "{backend} {strategy:?}");
                assert_eq!(real.tau, ref_real.tau, "{backend} {strategy:?}");
                for world in 0..5 {
                    let mut rng = sfstats::rng::world_rng(9, world);
                    let labels = e.generate_world(NullModel::Permutation, &mut rng);
                    let mut ref_rng = sfstats::rng::world_rng(9, world);
                    let ref_labels = reference.generate_world(NullModel::Permutation, &mut ref_rng);
                    assert_eq!(labels, ref_labels, "worlds must not depend on backend");
                    assert_eq!(
                        e.eval_world(&labels, Direction::TwoSided),
                        reference.eval_world(&ref_labels, Direction::TwoSided),
                        "{backend} {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn auto_resolves_to_membership_on_small_inputs() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Auto);
        assert_eq!(e.resolved_strategy(), CountingStrategy::Membership);
        assert_eq!(e.total_membership_ids(), 100);
    }

    #[test]
    fn auto_resolution_rule() {
        use CountingStrategy::*;
        // Small inputs: always membership, even at density 1.
        assert_eq!(
            resolve_strategy(Auto, 1 << 20, 1 << 10, 1 << 10),
            Membership
        );
        // Over the absolute id cap: requery.
        assert_eq!(
            resolve_strategy(Auto, (1 << 26) + 1, 1 << 13, 1 << 20),
            Requery
        );
        // Large but sparse: membership.
        assert_eq!(
            resolve_strategy(Auto, 1 << 24, 1 << 10, 1 << 20),
            Membership
        );
        // Large and dense (> half of M*N): requery.
        assert_eq!(resolve_strategy(Auto, 1 << 24, 1 << 4, 1 << 20), Requery);
        // Explicit strategies pass through untouched.
        assert_eq!(resolve_strategy(Membership, u64::MAX, 1, 1), Membership);
        assert_eq!(resolve_strategy(Requery, 0, 1, 1), Requery);
    }

    #[test]
    fn bernoulli_worlds_vary_in_totals() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let mut totals = std::collections::HashSet::new();
        for w in 0..20 {
            let mut rng = sfstats::rng::world_rng(1, w);
            let labels = e.generate_world(NullModel::Bernoulli, &mut rng);
            totals.insert(labels.count_ones());
        }
        assert!(totals.len() > 1, "Bernoulli worlds should vary in P");
    }

    #[test]
    fn permutation_worlds_preserve_totals() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        for w in 0..20 {
            let mut rng = sfstats::rng::world_rng(1, w);
            let labels = e.generate_world(NullModel::Permutation, &mut rng);
            assert_eq!(labels.count_ones(), o.positives());
        }
    }

    #[test]
    fn permutation_worlds_shuffle_positions() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let mut rng = sfstats::rng::world_rng(2, 0);
        let a = e.generate_world(NullModel::Permutation, &mut rng);
        let mut rng = sfstats::rng::world_rng(2, 1);
        let b = e.generate_world(NullModel::Permutation, &mut rng);
        assert_ne!(a, b, "different worlds must differ");
    }

    #[test]
    fn permutation_scratch_reuse_is_deterministic() {
        // Generating the same world repeatedly on one thread (dirty
        // scratch buffer) must give identical labels every time.
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let draws: Vec<BitLabels> = (0..3)
            .map(|_| {
                let mut rng = sfstats::rng::world_rng(4, 7);
                e.generate_world(NullModel::Permutation, &mut rng)
            })
            .collect();
        assert_eq!(draws[0], draws[1]);
        assert_eq!(draws[1], draws[2]);
        // And interleaving different worlds does not cross-contaminate.
        let mut rng = sfstats::rng::world_rng(4, 8);
        let other = e.generate_world(NullModel::Permutation, &mut rng);
        let mut rng = sfstats::rng::world_rng(4, 7);
        let again = e.generate_world(NullModel::Permutation, &mut rng);
        assert_ne!(other, draws[0]);
        assert_eq!(again, draws[0]);
    }

    #[test]
    fn multi_direction_eval_matches_single_direction() {
        let o = outcomes();
        let dirs = [Direction::TwoSided, Direction::High, Direction::Low];
        for strategy in [CountingStrategy::Membership, CountingStrategy::Requery] {
            let e = ScanEngine::build(&o, &region_set(), strategy);
            for w in 0..10 {
                let mut rng = sfstats::rng::world_rng(6, w);
                let labels = e.generate_world(NullModel::Bernoulli, &mut rng);
                let mut out = [0.0; 3];
                e.eval_world_into(&labels, &dirs, &mut out);
                for (tau, &d) in out.iter().zip(&dirs) {
                    assert_eq!(
                        *tau,
                        e.eval_world(&labels, d),
                        "world {w}, {d}, {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "one output slot")]
    fn multi_direction_eval_validates_slots() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let labels = BitLabels::from_bools(o.labels());
        let mut out = [0.0; 1];
        e.eval_world_into(&labels, &[Direction::High, Direction::Low], &mut out);
    }

    #[test]
    fn simulated_taus_are_small_for_fair_worlds() {
        // The real data is maximally unfair; simulated fair worlds must
        // have much smaller taus.
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        let real = e.scan_real(Direction::TwoSided);
        for w in 0..30 {
            let mut rng = sfstats::rng::world_rng(3, w);
            let labels = e.generate_world(NullModel::Bernoulli, &mut rng);
            let tau_w = e.eval_world(&labels, Direction::TwoSided);
            assert!(
                tau_w < real.tau * 0.5,
                "world {w}: tau {tau_w} vs real {}",
                real.tau
            );
        }
    }

    #[test]
    fn direction_filters_the_best_region() {
        let o = outcomes();
        let e = ScanEngine::build(&o, &region_set(), CountingStrategy::Membership);
        // Left half (index 0) is the HIGH region; right half is LOW.
        let high = e.scan_real(Direction::High);
        assert_eq!(high.best_index, 0);
        assert_eq!(high.llrs[1], 0.0);
        let low = e.scan_real(Direction::Low);
        assert_eq!(low.best_index, 1);
        assert_eq!(low.llrs[0], 0.0);
    }

    #[test]
    fn empty_regions_do_not_contribute() {
        let o = outcomes();
        let rs = RegionSet::from_regions(vec![
            sfgeo::Region::Rect(Rect::from_coords(50.0, 50.0, 60.0, 60.0)), // empty
            sfgeo::Region::Rect(Rect::from_coords(0.0, 0.0, 5.0, 10.0)),    // left half
        ]);
        let e = ScanEngine::build(&o, &rs, CountingStrategy::Membership);
        let real = e.scan_real(Direction::TwoSided);
        assert_eq!(real.counts[0], CountPair::default());
        assert_eq!(real.llrs[0], 0.0);
        assert_eq!(real.best_index, 1);
    }
}
