//! The audit driver.
//!
//! [`Auditor::audit`] executes the full §3 pipeline:
//!
//! 1. scan the real world: per-region `(n, p)` counts and LLRs, and
//!    the test statistic `τ = max_R LLR(R)`;
//! 2. calibrate `τ` with a Monte Carlo simulation over alternate
//!    worlds drawn from the null model;
//! 3. derive the p-value (`k/w`) and the per-region critical value;
//! 4. assemble the evidence: all individually significant regions
//!    ranked by their likelihood ratio (SUL ranking).
//!
//! Since the serving-layer refactor this type is a thin client of the
//! prepare/plan/execute path in [`crate::prepared`]: one audit is a
//! [`PreparedAudit`] serving a single-request batch. Callers running
//! many audits over one dataset should hold the [`PreparedAudit`]
//! (or an `sfserve::AuditServer`) instead of looping over
//! [`Auditor::audit`], which rebuilds the engine every call.

use crate::config::AuditConfig;
use crate::error::ScanError;
use crate::outcomes::SpatialOutcomes;
use crate::prepared::{AuditRequest, PreparedAudit};
use crate::regions::RegionSet;
use crate::report::AuditReport;

/// Executes spatial-fairness audits.
#[derive(Debug, Clone, Copy)]
pub struct Auditor {
    config: AuditConfig,
}

impl Auditor {
    /// Creates an auditor with the given configuration.
    pub fn new(config: AuditConfig) -> Self {
        Auditor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Runs the audit of `outcomes` over the candidate `regions`.
    ///
    /// # Errors
    /// * [`ScanError::EmptyRegionSet`] — no regions to scan.
    /// * [`ScanError::DegenerateOutcomes`] — all labels equal; the
    ///   scan statistic is vacuous.
    pub fn audit(
        &self,
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
    ) -> Result<AuditReport, ScanError> {
        let prepared = PreparedAudit::prepare(outcomes, regions, self.config)?;
        Ok(prepared.run(&AuditRequest::from_config(&self.config)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CountingStrategy, NullModel};
    use crate::direction::Direction;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Point, Rect};

    /// Unfair by design: uniform locations, left half rate 0.9, right
    /// half rate 0.1.
    fn unfair_outcomes(n: usize, seed: u64) -> SpatialOutcomes {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..10.0);
            let y: f64 = rng.gen_range(0.0..10.0);
            let rate = if x < 5.0 { 0.9 } else { 0.1 };
            points.push(Point::new(x, y));
            labels.push(rng.gen_bool(rate));
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    /// Fair by design: same locations, every label Bernoulli(0.5).
    fn fair_outcomes(n: usize, seed: u64) -> SpatialOutcomes {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            points.push(Point::new(
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..10.0),
            ));
            labels.push(rng.gen_bool(0.5));
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn grid() -> RegionSet {
        RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
    }

    fn config() -> AuditConfig {
        AuditConfig::new(0.05).with_worlds(199).with_seed(7)
    }

    #[test]
    fn unfair_data_is_declared_unfair() {
        let report = Auditor::new(config())
            .audit(&unfair_outcomes(2000, 1), &grid())
            .unwrap();
        assert!(report.is_unfair(), "p={}", report.p_value);
        assert_eq!(report.p_value, 1.0 / 200.0);
        assert!(!report.findings.is_empty());
        // Every finding is individually significant.
        for f in &report.findings {
            assert!(f.llr > report.critical_value);
        }
        // Findings are sorted by LLR descending.
        for w in report.findings.windows(2) {
            assert!(w[0].llr >= w[1].llr);
        }
        // The best region is the top finding.
        assert_eq!(report.findings[0].index, report.best_region_index);
    }

    #[test]
    fn fair_data_is_declared_fair() {
        let report = Auditor::new(config())
            .audit(&fair_outcomes(2000, 2), &grid())
            .unwrap();
        assert!(report.is_fair(), "p={}", report.p_value);
        assert!(
            report.findings.is_empty(),
            "no region should be significant"
        );
    }

    #[test]
    fn audit_is_deterministic() {
        let o = unfair_outcomes(500, 3);
        let a = Auditor::new(config()).audit(&o, &grid()).unwrap();
        let b = Auditor::new(config()).audit(&o, &grid()).unwrap();
        assert_eq!(a, b);
        let mut seq = Auditor::new(config().sequential())
            .audit(&o, &grid())
            .unwrap();
        // The report embeds its config; align the parallelism flag so
        // the comparison checks the *results* are bit-identical.
        seq.config.parallel = true;
        assert_eq!(a, seq, "parallel and sequential audits must agree exactly");
    }

    #[test]
    fn strategies_agree() {
        let o = unfair_outcomes(500, 4);
        let mem = Auditor::new(config().with_strategy(CountingStrategy::Membership))
            .audit(&o, &grid())
            .unwrap();
        let req = Auditor::new(config().with_strategy(CountingStrategy::Requery))
            .audit(&o, &grid())
            .unwrap();
        assert_eq!(mem.tau, req.tau);
        assert_eq!(mem.p_value, req.p_value);
        assert_eq!(mem.findings, req.findings);
    }

    #[test]
    fn permutation_null_also_works() {
        let o = unfair_outcomes(1000, 5);
        let report = Auditor::new(config().with_null_model(NullModel::Permutation))
            .audit(&o, &grid())
            .unwrap();
        assert!(report.is_unfair());
        let fair = Auditor::new(config().with_null_model(NullModel::Permutation))
            .audit(&fair_outcomes(1000, 6), &grid())
            .unwrap();
        assert!(fair.is_fair(), "p={}", fair.p_value);
    }

    #[test]
    fn directed_audits_find_the_right_half() {
        let o = unfair_outcomes(2000, 7);
        let high = Auditor::new(config().with_direction(Direction::High))
            .audit(&o, &grid())
            .unwrap();
        assert!(high.is_unfair());
        // All "green" findings are in the left (high-rate) half.
        for f in &high.findings {
            assert!(f.region.center().x < 5.0, "green finding at {}", f.region);
            assert!(f.rate > o.rate());
        }
        let low = Auditor::new(config().with_direction(Direction::Low))
            .audit(&o, &grid())
            .unwrap();
        assert!(low.is_unfair());
        for f in &low.findings {
            assert!(f.region.center().x > 5.0, "red finding at {}", f.region);
            assert!(f.rate < o.rate());
        }
    }

    #[test]
    fn backends_produce_bit_identical_reports() {
        use sfindex::IndexBackend;
        let o = unfair_outcomes(1500, 21);
        let reference = Auditor::new(config()).audit(&o, &grid()).unwrap();
        for backend in IndexBackend::ALL {
            let mut report = Auditor::new(config().with_backend(backend))
                .audit(&o, &grid())
                .unwrap();
            // The report embeds its config; align the backend knob so
            // the comparison checks the *results* are bit-identical.
            report.config.backend = reference.config.backend;
            assert_eq!(report, reference, "backend {backend} diverged");
        }
    }

    #[test]
    fn auto_strategy_matches_explicit_membership() {
        let o = unfair_outcomes(800, 22);
        let mem = Auditor::new(config().with_strategy(CountingStrategy::Membership))
            .audit(&o, &grid())
            .unwrap();
        let mut auto = Auditor::new(config().with_strategy(CountingStrategy::Auto))
            .audit(&o, &grid())
            .unwrap();
        auto.config.strategy = mem.config.strategy;
        assert_eq!(auto, mem);
    }

    #[test]
    fn early_stop_agrees_and_saves_worlds() {
        use sfstats::montecarlo::McStrategy;
        // Clearly unfair: certainty stop fires before the budget.
        let o = unfair_outcomes(2000, 23);
        let full = Auditor::new(config()).audit(&o, &grid()).unwrap();
        let stopped =
            Auditor::new(config().with_mc_strategy(McStrategy::EarlyStop { batch_size: 16 }))
                .audit(&o, &grid())
                .unwrap();
        assert!(full.is_unfair());
        assert_eq!(stopped.is_unfair(), full.is_unfair());
        assert_eq!(full.worlds_evaluated, 199);
        assert!(
            stopped.worlds_evaluated < full.worlds_evaluated,
            "certainty stop should save worlds ({} vs {})",
            stopped.worlds_evaluated,
            full.worlds_evaluated
        );
        // Evaluated worlds are a prefix of the full run (bit-identical
        // per-world values regardless of stopping).
        assert_eq!(
            full.simulated[..stopped.worlds_evaluated],
            stopped.simulated[..]
        );

        // Clearly fair: futility stop fires much earlier.
        let o = fair_outcomes(2000, 24);
        let full = Auditor::new(config()).audit(&o, &grid()).unwrap();
        let stopped =
            Auditor::new(config().with_mc_strategy(McStrategy::EarlyStop { batch_size: 16 }))
                .audit(&o, &grid())
                .unwrap();
        assert!(full.is_fair());
        assert_eq!(stopped.is_fair(), full.is_fair());
        assert!(
            stopped.worlds_evaluated <= 64,
            "futility stop should fire fast, used {}",
            stopped.worlds_evaluated
        );
    }

    #[test]
    fn degenerate_outcomes_error() {
        let points = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let o = SpatialOutcomes::new(points, vec![true, true]).unwrap();
        let err = Auditor::new(config()).audit(&o, &grid()).unwrap_err();
        assert!(matches!(err, ScanError::DegenerateOutcomes { .. }));
    }

    #[test]
    fn empty_region_set_error() {
        let o = fair_outcomes(100, 8);
        let rs = RegionSet::from_regions(vec![]);
        let err = Auditor::new(config()).audit(&o, &rs).unwrap_err();
        assert_eq!(err, ScanError::EmptyRegionSet);
    }

    #[test]
    fn type_one_error_rate_is_controlled() {
        // Audit many fair datasets at alpha = 0.1 and check the
        // rejection rate is near alpha (the statistical soundness of
        // the whole pipeline).
        let cfg = AuditConfig::new(0.1).with_worlds(59).with_seed(100);
        let trials = 60;
        let mut rejections = 0;
        for t in 0..trials {
            let o = fair_outcomes(300, 1000 + t);
            let small_grid = RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 3, 3);
            let report = Auditor::new(cfg.with_seed(t))
                .audit(&o, &small_grid)
                .unwrap();
            if report.is_unfair() {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(
            rate < 0.25,
            "type-I error rate {rate} should be near alpha=0.1"
        );
    }

    #[test]
    fn power_grows_with_sample_size() {
        // With a weak signal, more data should give a smaller p-value.
        let weak = |n: usize, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut points = Vec::with_capacity(n);
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                let x: f64 = rng.gen_range(0.0..10.0);
                let y: f64 = rng.gen_range(0.0..10.0);
                let rate = if x < 5.0 { 0.55 } else { 0.45 };
                points.push(Point::new(x, y));
                labels.push(rng.gen_bool(rate));
            }
            SpatialOutcomes::new(points, labels).unwrap()
        };
        let cfg = AuditConfig::new(0.05).with_worlds(199).with_seed(11);
        let small = Auditor::new(cfg).audit(&weak(200, 12), &grid()).unwrap();
        let large = Auditor::new(cfg).audit(&weak(20_000, 12), &grid()).unwrap();
        assert!(
            large.p_value <= small.p_value,
            "large-n p {} vs small-n p {}",
            large.p_value,
            small.p_value
        );
        assert!(
            large.is_unfair(),
            "20k observations of a 10-point gap is detectable"
        );
    }
}
