//! The `MeanVar` baseline (Xie et al., AAAI 2022 — "Fairness by
//! Where"), as described and critiqued in the reproduced paper.
//!
//! For each rectangular partitioning, compute the variance of the
//! fairness measure (local positive rate) across its *non-empty*
//! partitions; `MeanVar` is the mean of those variances over all
//! partitionings. Lower values are read as "more fair".
//!
//! The paper shows this measure cannot audit ("is it fair?") — on
//! non-regular spatial distributions a fair-by-design dataset can score
//! *worse* than an unfair-by-design one (Figure 1: 0.0522 vs 0.0431) —
//! and cannot testify ("where?") — its top-contributing partitions are
//! sparse, predominantly one-label cells that arise by chance under the
//! null (Figures 2(a), 3(b), 4(b)).

use crate::outcomes::SpatialOutcomes;
use serde::{Deserialize, Serialize};
use sfgeo::{Partitioning, Rect};
use sfstats::descriptive::RunningMoments;

/// The `MeanVar` spatial-unfairness score of a set of partitionings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanVarResult {
    /// Mean over partitionings of the per-partitioning variance.
    pub mean_variance: f64,
    /// The individual per-partitioning variances.
    pub per_partitioning: Vec<f64>,
}

/// One partition's share of a partitioning's variance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionContribution {
    /// Partition id within its partitioning.
    pub partition_id: usize,
    /// Partition rectangle.
    pub rect: Rect,
    /// Observations in the partition.
    pub n: u64,
    /// Positives in the partition.
    pub p: u64,
    /// Local rate `p/n`.
    pub rate: f64,
    /// Squared deviation from the partitioning's mean rate — the
    /// partition's contribution to the variance. Note this is
    /// *independent of `n`*, which is exactly why sparse extreme cells
    /// dominate the ranking (paper Figure 2(a): a 5-point all-negative
    /// cell "ties for the largest contribution").
    pub contribution: f64,
}

/// The `MeanVar` baseline computations.
pub struct MeanVar;

impl MeanVar {
    /// Computes the `MeanVar` score over `partitionings`.
    ///
    /// # Panics
    /// Panics if `partitionings` is empty.
    pub fn compute(outcomes: &SpatialOutcomes, partitionings: &[Partitioning]) -> MeanVarResult {
        assert!(
            !partitionings.is_empty(),
            "MeanVar needs at least one partitioning"
        );
        let per_partitioning: Vec<f64> = partitionings
            .iter()
            .map(|p| Self::partitioning_variance(outcomes, p))
            .collect();
        let mean_variance = per_partitioning.iter().sum::<f64>() / per_partitioning.len() as f64;
        MeanVarResult {
            mean_variance,
            per_partitioning,
        }
    }

    /// Variance of the local positive rate across the non-empty
    /// partitions of one partitioning.
    pub fn partitioning_variance(outcomes: &SpatialOutcomes, p: &Partitioning) -> f64 {
        let (counts, positives) = histogram(outcomes, p);
        let mut acc = RunningMoments::new();
        for (n, pp) in counts.iter().zip(&positives) {
            if *n > 0 {
                acc.push(*pp as f64 / *n as f64);
            }
        }
        acc.variance_population()
    }

    /// Per-partition contributions for one partitioning, ranked by
    /// contribution descending (ties broken by `n` descending, matching
    /// the paper's display of "the largest of them").
    pub fn contributions(
        outcomes: &SpatialOutcomes,
        p: &Partitioning,
    ) -> Vec<PartitionContribution> {
        let (counts, positives) = histogram(outcomes, p);
        let mut acc = RunningMoments::new();
        for (n, pp) in counts.iter().zip(&positives) {
            if *n > 0 {
                acc.push(*pp as f64 / *n as f64);
            }
        }
        let mean = acc.mean();
        let mut out: Vec<PartitionContribution> = counts
            .iter()
            .zip(&positives)
            .enumerate()
            .filter(|(_, (n, _))| **n > 0)
            .map(|(id, (n, pp))| {
                let rate = *pp as f64 / *n as f64;
                let dev = rate - mean;
                PartitionContribution {
                    partition_id: id,
                    rect: p.partition_rect(id),
                    n: *n,
                    p: *pp,
                    rate,
                    contribution: dev * dev,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.contribution
                .partial_cmp(&a.contribution)
                .expect("contributions are finite")
                .then(b.n.cmp(&a.n))
        });
        out
    }
}

/// Per-partition `(n, p)` histogram via the partitioning's total point
/// assignment.
fn histogram(outcomes: &SpatialOutcomes, p: &Partitioning) -> (Vec<u64>, Vec<u64>) {
    let mut counts = vec![0u64; p.num_partitions()];
    let mut positives = vec![0u64; p.num_partitions()];
    for (pt, &label) in outcomes.points().iter().zip(outcomes.labels()) {
        let id = p.partition_of(pt);
        counts[id] += 1;
        positives[id] += label as u64;
    }
    (counts, positives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgeo::Point;

    /// 100 points on a 10x10 lattice, left half positive.
    fn split_outcomes() -> SpatialOutcomes {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for iy in 0..10 {
            for ix in 0..10 {
                points.push(Point::new(ix as f64 + 0.5, iy as f64 + 0.5));
                labels.push(ix < 5);
            }
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn bounds() -> Rect {
        Rect::from_coords(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn perfectly_homogeneous_partitioning_has_zero_variance() {
        // Horizontal strips: every strip has rate 0.5.
        let p = Partitioning::regular(bounds(), 1, 5);
        let v = MeanVar::partitioning_variance(&split_outcomes(), &p);
        assert!(v.abs() < 1e-15, "got {v}");
    }

    #[test]
    fn split_partitioning_has_maximal_variance() {
        // Two vertical halves: rates 1.0 and 0.0 -> population variance
        // of {1, 0} = 0.25.
        let p = Partitioning::regular(bounds(), 2, 1);
        let v = MeanVar::partitioning_variance(&split_outcomes(), &p);
        assert!((v - 0.25).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn mean_over_partitionings_averages() {
        let o = split_outcomes();
        let strips = Partitioning::regular(bounds(), 1, 5); // var 0
        let halves = Partitioning::regular(bounds(), 2, 1); // var 0.25
        let r = MeanVar::compute(&o, &[strips, halves]);
        assert!((r.mean_variance - 0.125).abs() < 1e-12);
        assert_eq!(r.per_partitioning.len(), 2);
    }

    #[test]
    fn empty_partitions_are_excluded() {
        // Points only in the left half, but partitioning splits into 4
        // columns: two columns are empty and must not count as rate 0.
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            points.push(Point::new(1.0 + (i as f64) * 0.05, 5.0));
            labels.push(i % 2 == 0);
        }
        let o = SpatialOutcomes::new(points, labels).unwrap();
        let p = Partitioning::regular(bounds(), 4, 1);
        // All 20 points are in column 0 (x in 1.0..1.95, column width
        // 2.5): rate 0.5; the other three columns are empty and must
        // not enter the variance as rate-0 partitions.
        let v = MeanVar::partitioning_variance(&o, &p);
        assert!(v.abs() < 1e-15, "variance should be 0, got {v}");
    }

    #[test]
    fn contributions_rank_extreme_cells_first() {
        // Mostly balanced cells plus one tiny all-negative cell far in
        // a corner: the tiny cell must top the contribution ranking
        // even though it has almost no observations (the paper's core
        // criticism of MeanVar).
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for iy in 0..10 {
            for ix in 0..10 {
                points.push(Point::new(ix as f64 + 0.4, iy as f64 + 0.4));
                labels.push((ix + iy) % 2 == 0); // checkerboard, rate ~0.5
            }
        }
        // Tiny all-negative cluster in the top-right cell.
        for k in 0..3 {
            points.push(Point::new(9.7 + (k as f64) * 0.01, 9.7));
            labels.push(false);
        }
        let o = SpatialOutcomes::new(points, labels).unwrap();
        let p = Partitioning::regular(bounds(), 5, 5);
        let contribs = MeanVar::contributions(&o, &p);
        let top = &contribs[0];
        // The top contributor is the cell containing the tiny cluster
        // (rate well below the mean).
        assert!(top.rate < 0.35, "top contributor rate {}", top.rate);
        assert!(top.contribution > contribs.last().unwrap().contribution);
    }

    #[test]
    fn contribution_is_size_independent_for_pure_cells() {
        // Two all-negative cells of very different sizes tie on
        // contribution (this is the Figure 2(a) "ties for the largest
        // contribution" behaviour).
        let mut points = Vec::new();
        let mut labels = Vec::new();
        // Balanced background in cell (0,0).
        for i in 0..50 {
            points.push(Point::new(0.5 + (i as f64) * 0.001, 0.5));
            labels.push(i % 2 == 0);
        }
        // 5-point all-negative cell at (5..6, 5..6) region of space.
        for i in 0..5 {
            points.push(Point::new(5.5 + (i as f64) * 0.01, 5.5));
            labels.push(false);
        }
        // 50-point all-negative cell around (9.5, 9.5).
        for i in 0..50 {
            points.push(Point::new(9.5 + (i as f64) * 0.001, 9.5));
            labels.push(false);
        }
        let o = SpatialOutcomes::new(points, labels).unwrap();
        let p = Partitioning::regular(bounds(), 10, 10);
        let contribs = MeanVar::contributions(&o, &p);
        // Both all-negative cells have rate 0 -> identical deviation.
        let zero_rate: Vec<_> = contribs.iter().filter(|c| c.rate == 0.0).collect();
        assert_eq!(zero_rate.len(), 2);
        assert!((zero_rate[0].contribution - zero_rate[1].contribution).abs() < 1e-15);
        // Tie broken by n: the 50-point cell is displayed first.
        assert!(zero_rate[0].n >= zero_rate[1].n);
    }

    #[test]
    #[should_panic(expected = "at least one partitioning")]
    fn empty_partitionings_rejected() {
        let _ = MeanVar::compute(&split_outcomes(), &[]);
    }
}
