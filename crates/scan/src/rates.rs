//! Rate audits over area-level counts (Poisson model; extension).
//!
//! The paper's crime-forecasting motivation (§1): "we require the
//! predicted crime rate to not differ greatly than the observed crime
//! rate in all areas". When only *area-level counts* are available —
//! observed events `c_i` and exposure/expected events `e_i` per cell —
//! the Bernoulli machinery does not apply; the natural instrument is
//! Kulldorff's **Poisson scan statistic** (cited by the paper in
//! §2.3, implemented in [`sfstats::poisson`]).
//!
//! This module provides the audit loop for that setting: candidate
//! regions are unions of cells, the statistic is the Poisson LLR, and
//! significance is calibrated by conditioning on the total event count
//! and redistributing events multinomially by exposure (an exact
//! sample from the null, drawn in O(C + K) per world via the alias
//! method).

use crate::config::AuditConfig;
use crate::direction::Direction;
use crate::error::ScanError;
use crate::prepared::{distinct_directions, run_world_group, AuditRequest};
use crate::worldcache::TauRows;
use serde::{Deserialize, Serialize};
use sfgeo::Rect;
use sfstats::alias::AliasTable;
use sfstats::poisson::{poisson_llr_directed, PoissonCounts};
use sfstats::rng::world_rng;

/// Area-level count data: one entry per cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellCounts {
    /// Cell geometries (for reporting; the audit itself is topology-free).
    pub cells: Vec<Rect>,
    /// Observed event count per cell (`c_i`).
    pub observed: Vec<u64>,
    /// Exposure / expected share per cell (`e_i`, any positive scale).
    pub exposure: Vec<f64>,
}

impl CellCounts {
    /// Validates and wraps the inputs.
    pub fn new(
        cells: Vec<Rect>,
        observed: Vec<u64>,
        exposure: Vec<f64>,
    ) -> Result<Self, ScanError> {
        if cells.is_empty() {
            return Err(ScanError::EmptyOutcomes);
        }
        if cells.len() != observed.len() || cells.len() != exposure.len() {
            return Err(ScanError::LengthMismatch {
                points: cells.len(),
                labels: observed.len().min(exposure.len()),
            });
        }
        if exposure.iter().any(|e| !e.is_finite() || *e < 0.0) {
            return Err(ScanError::NonFiniteLocation { index: 0 });
        }
        Ok(CellCounts {
            cells,
            observed,
            exposure,
        })
    }

    /// Total observed events.
    pub fn total_observed(&self) -> u64 {
        self.observed.iter().sum()
    }

    /// Total exposure.
    pub fn total_exposure(&self) -> f64 {
        self.exposure.iter().sum()
    }
}

/// A flagged cell group in a rate audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateFinding {
    /// Index of the cell (regions are single cells in this auditor).
    pub cell: usize,
    /// Cell geometry.
    pub rect: Rect,
    /// Observed events.
    pub observed: u64,
    /// Expected events under the global rate.
    pub expected: f64,
    /// Relative risk `observed / expected`.
    pub relative_risk: f64,
    /// Poisson LLR.
    pub llr: f64,
}

/// Result of a rate audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateReport {
    /// Test statistic (max Poisson LLR over cells).
    pub tau: f64,
    /// Monte Carlo p-value.
    pub p_value: f64,
    /// Per-cell critical value at the configured `alpha`.
    pub critical_value: f64,
    /// Significance level used.
    pub alpha: f64,
    /// Monte Carlo worlds actually evaluated (fewer than the budget
    /// when early stopping decided the verdict sooner).
    pub worlds_evaluated: usize,
    /// Significant cells, ranked by LLR descending.
    pub findings: Vec<RateFinding>,
}

impl RateReport {
    /// `true` iff the rate surface is declared spatially unfair.
    pub fn is_unfair(&self) -> bool {
        self.p_value <= self.alpha
    }
}

/// Audits an area-level rate surface for spatial homogeneity.
///
/// Uses `config.alpha`, `config.worlds`, `config.seed`,
/// `config.direction`, `config.mc_strategy` and `config.parallel`; the
/// Bernoulli-specific fields (null model, counting strategy, index
/// backend) do not apply here.
///
/// A thin client of the batched path: equivalent to
/// [`audit_rates_batch`] with the one request the config denotes.
pub fn audit_rates(config: &AuditConfig, data: &CellCounts) -> Result<RateReport, ScanError> {
    let mut reports = audit_rates_batch(config, data, &[AuditRequest::from_config(config)])?;
    Ok(reports.pop().expect("one request yields one report"))
}

/// Batched rate audits over one shared null-world stream.
///
/// The Poisson null conditions on the total event count and
/// redistributes events multinomially by exposure — a sampled world
/// depends only on `(seed, world index)`, so requests sharing a seed
/// share every sampled world: each world's counts are drawn **once**
/// and scored per distinct request direction (`null_model` does not
/// apply to rate audits and is ignored). Per-request early stopping is
/// replayed on [`WorldLane`]s over the shared stream, with
/// [`BudgetScheduler`] spans reallocating worlds freed by futility
/// stops to still-contested requests — the same machinery the
/// Bernoulli serving layer uses, so every report is bit-identical to
/// running its request alone.
///
/// `config.parallel` controls span parallelism; reports come back in
/// request order.
///
/// # Errors
/// [`ScanError::DegenerateOutcomes`] when the surface has no events,
/// [`ScanError::InvalidRequest`] when a request carries invalid knobs.
pub fn audit_rates_batch(
    config: &AuditConfig,
    data: &CellCounts,
    requests: &[AuditRequest],
) -> Result<Vec<RateReport>, ScanError> {
    let c_total = data.total_observed();
    let mu_total = data.total_exposure();
    if c_total == 0 || mu_total <= 0.0 {
        return Err(ScanError::DegenerateOutcomes {
            n: data.cells.len() as u64,
            p: c_total,
        });
    }
    for request in requests {
        request.validate()?;
    }
    let eval_into = |observed: &[u64], directions: &[Direction], out: &mut [f64]| {
        out.fill(0.0);
        for (i, &c) in observed.iter().enumerate() {
            let counts = PoissonCounts::new(c as f64, data.exposure[i], c_total as f64, mu_total);
            for (tau, &direction) in out.iter_mut().zip(directions) {
                let llr = poisson_llr_directed(&counts, direction);
                if llr > *tau {
                    *tau = llr;
                }
            }
        }
    };

    // Plan: group requests by seed (the rate-audit world class), then
    // run each group's shared stream on the serving layer's common
    // lane/scheduler loop.
    let mut reports: Vec<Option<RateReport>> = Vec::new();
    reports.resize_with(requests.len(), || None);
    let mut seeds_seen: Vec<u64> = Vec::new();
    for request in requests {
        if !seeds_seen.contains(&request.seed) {
            seeds_seen.push(request.seed);
        }
    }
    let alias = AliasTable::new(&data.exposure);
    for seed in seeds_seen {
        let members: Vec<usize> = (0..requests.len())
            .filter(|&i| requests[i].seed == seed)
            .collect();
        let (directions, lane_dirs) = distinct_directions(requests, &members);
        let mut observed_taus = vec![0.0; directions.len()];
        eval_into(&data.observed, &directions, &mut observed_taus);
        // Rate worlds have no finer parallel axis (one alias-table
        // sample per world) and no fused counting path — the fine
        // flag is moot and a batch just walks its worlds one by one
        // (per-world RNG streams keep the stream identical to the
        // per-world loop).
        let eval_batch = |first: usize, out: &mut [f64], _fine: bool| {
            for (k, out) in out.chunks_mut(directions.len()).enumerate() {
                let mut rng = world_rng(seed, (first + k) as u64);
                let world = alias.sample_counts(c_total, &mut rng);
                eval_into(&world, &directions, out);
            }
        };
        let run = run_world_group(
            requests,
            &members,
            &lane_dirs,
            &observed_taus,
            config.parallel,
            &TauRows::new(directions.len()),
            false,
            eval_batch,
        );

        for ((result, &ri), &di) in run.results.into_iter().zip(&members).zip(&lane_dirs) {
            let request = &requests[ri];
            let p_value = result.p_value();
            let critical_value = result.critical_value(request.alpha);
            let direction = directions[di];
            let mut findings: Vec<RateFinding> = data
                .observed
                .iter()
                .enumerate()
                .filter_map(|(i, &c)| {
                    let counts =
                        PoissonCounts::new(c as f64, data.exposure[i], c_total as f64, mu_total);
                    let llr = poisson_llr_directed(&counts, direction);
                    if llr > critical_value {
                        let expected = counts.mu_in_calibrated();
                        Some(RateFinding {
                            cell: i,
                            rect: data.cells[i],
                            observed: c,
                            expected,
                            relative_risk: c as f64 / expected,
                            llr,
                        })
                    } else {
                        None
                    }
                })
                .collect();
            findings.sort_by(|a, b| b.llr.partial_cmp(&a.llr).expect("finite LLRs"));
            reports[ri] = Some(RateReport {
                tau: observed_taus[di],
                p_value,
                critical_value,
                alpha: request.alpha,
                worlds_evaluated: result.worlds_evaluated,
                findings,
            });
        }
    }
    Ok(reports
        .into_iter()
        .map(|r| r.expect("every request belongs to exactly one seed group"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direction::Direction;
    use rand::Rng;
    use sfstats::rng::seeded_rng;

    /// A 10x10 city; exposure uniform; events Poisson-ish via binomial
    /// thinning of a big total.
    fn city(hotspot_boost: f64, seed: u64) -> CellCounts {
        let mut rng = seeded_rng(seed);
        let mut cells = Vec::new();
        let mut observed = Vec::new();
        let mut exposure = Vec::new();
        for iy in 0..10 {
            for ix in 0..10 {
                cells.push(Rect::from_coords(
                    ix as f64,
                    iy as f64,
                    (ix + 1) as f64,
                    (iy + 1) as f64,
                ));
                // Base intensity 100 events per cell; the 3x3 block at
                // the north-east corner is boosted.
                let hot = ix >= 7 && iy >= 7;
                let lambda = if hot { 100.0 * hotspot_boost } else { 100.0 };
                // Simple Poisson via sum of Bernoulli thinning.
                let mut c = 0u64;
                for _ in 0..(lambda * 4.0) as usize {
                    if rng.gen_bool(0.25) {
                        c += 1;
                    }
                }
                observed.push(c);
                exposure.push(1.0);
            }
        }
        CellCounts::new(cells, observed, exposure).unwrap()
    }

    fn config() -> AuditConfig {
        AuditConfig::new(0.01).with_worlds(199).with_seed(11)
    }

    #[test]
    fn homogeneous_surface_is_fair() {
        let data = city(1.0, 1);
        let report = audit_rates(&config(), &data).unwrap();
        assert!(!report.is_unfair(), "p={}", report.p_value);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn hotspot_is_detected_and_localised() {
        let data = city(1.6, 2);
        let report = audit_rates(&config(), &data).unwrap();
        assert!(report.is_unfair(), "p={}", report.p_value);
        assert!(!report.findings.is_empty());
        // Every finding lies in the boosted 3x3 corner.
        for f in &report.findings {
            assert!(
                f.rect.min.x >= 7.0 && f.rect.min.y >= 7.0,
                "false positive at {:?}",
                f.rect
            );
            assert!(f.relative_risk > 1.2);
        }
    }

    #[test]
    fn direction_low_finds_cold_spots() {
        // Boost everything EXCEPT the corner -> the corner is cold.
        let mut data = city(1.0, 3);
        for (i, c) in data.observed.iter_mut().enumerate() {
            let (ix, iy) = (i % 10, i / 10);
            if !(ix >= 7 && iy >= 7) {
                *c += 60;
            }
        }
        let cfg = config().with_direction(Direction::Low);
        let report = audit_rates(&cfg, &data).unwrap();
        assert!(report.is_unfair());
        for f in &report.findings {
            assert!(f.rect.min.x >= 7.0 && f.rect.min.y >= 7.0);
            assert!(f.relative_risk < 1.0);
        }
    }

    #[test]
    fn exposure_scaling_does_not_change_the_statistic() {
        let data = city(1.5, 4);
        let mut scaled = data.clone();
        for e in &mut scaled.exposure {
            *e *= 1234.5;
        }
        let a = audit_rates(&config(), &data).unwrap();
        let b = audit_rates(&config(), &scaled).unwrap();
        assert!((a.tau - b.tau).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_exposure_is_respected() {
        // Cell 0 has 10x the exposure and ~10x the events: fair.
        let cells = vec![
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            Rect::from_coords(1.0, 0.0, 2.0, 1.0),
            Rect::from_coords(2.0, 0.0, 3.0, 1.0),
        ];
        let observed = vec![1000, 100, 100];
        let exposure = vec![10.0, 1.0, 1.0];
        let data = CellCounts::new(cells, observed, exposure).unwrap();
        let report = audit_rates(&config(), &data).unwrap();
        assert!(!report.is_unfair(), "p={}", report.p_value);
    }

    #[test]
    fn deterministic() {
        let data = city(1.4, 5);
        let a = audit_rates(&config(), &data).unwrap();
        let b = audit_rates(&config(), &data).unwrap();
        assert_eq!(a, b);
        let seq = audit_rates(&config().sequential(), &data).unwrap();
        assert_eq!(a.tau, seq.tau);
        assert_eq!(a.p_value, seq.p_value);
    }

    #[test]
    fn batched_rate_audits_match_standalone_runs() {
        use sfstats::montecarlo::McStrategy;
        let data = city(1.5, 6);
        let base = config();
        let requests = vec![
            AuditRequest::from_config(&base),
            AuditRequest::from_config(&base).with_direction(Direction::High),
            AuditRequest::from_config(&base).with_direction(Direction::Low),
            AuditRequest::from_config(&base).with_seed(99),
            AuditRequest::from_config(&base)
                .with_mc_strategy(McStrategy::EarlyStop { batch_size: 16 }),
        ];
        let batch = audit_rates_batch(&base, &data, &requests).unwrap();
        assert_eq!(batch.len(), requests.len());
        for (request, report) in requests.iter().zip(&batch) {
            let mut cfg = base;
            cfg.alpha = request.alpha;
            cfg.worlds = request.worlds;
            cfg.seed = request.seed;
            cfg.direction = request.direction;
            cfg.mc_strategy = request.mc_strategy;
            let expected = audit_rates(&cfg, &data).unwrap();
            assert_eq!(*report, expected, "request {request:?}");
        }
    }

    #[test]
    fn validation_errors() {
        assert!(CellCounts::new(vec![], vec![], vec![]).is_err());
        let cells = vec![Rect::from_coords(0.0, 0.0, 1.0, 1.0)];
        assert!(CellCounts::new(cells.clone(), vec![1, 2], vec![1.0]).is_err());
        assert!(CellCounts::new(cells.clone(), vec![1], vec![-1.0]).is_err());
        // All-zero observed counts are degenerate.
        let data = CellCounts::new(cells, vec![0], vec![1.0]).unwrap();
        assert!(audit_rates(&config(), &data).is_err());
    }
}
