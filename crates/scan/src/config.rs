//! Audit configuration.

use crate::direction::Direction;
use serde::{Deserialize, Serialize};
pub use sfindex::IndexBackend;
pub use sfindex::{CountingKernel, KernelSelect, ParseKernelError};
pub use sfstats::bulk::WorldGen;
pub use sfstats::kernel::{ParseStatisticError, Statistic, TauKernel};
pub use sfstats::montecarlo::McStrategy;

/// How alternate-world labels are generated for the Monte Carlo
/// calibration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NullModel {
    /// The paper's model (§3): every label is an independent
    /// `Bernoulli(ρ̂)` draw, so the total number of positives varies
    /// across worlds.
    #[default]
    Bernoulli,
    /// Kulldorff-style conditioning: each world is a uniformly random
    /// permutation of the *observed* labels, so every world has exactly
    /// `P` positives. Provided as an extension and ablated in the
    /// benches.
    Permutation,
}

/// How per-world region counts are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CountingStrategy {
    /// Materialise each region's member ids once; every world only
    /// recounts positives against a fresh label bitset (fast; memory
    /// proportional to total membership).
    #[default]
    Membership,
    /// Re-run a spatial range query per region per world (no extra
    /// memory; slower). Exists mainly as the ablation baseline proving
    /// the membership path is an optimisation, not a semantic change.
    Requery,
    /// Compile the member-id lists into word-aligned `(block, mask)`
    /// popcnt runs over the label bitset's block array, laid out in
    /// Morton id order so compact regions own dense masks
    /// ([`sfindex::BlockedMembership`]). The per-world recount becomes
    /// a branch-free masked-popcount sweep — up to 64 ids per
    /// instruction instead of one bitset read per id. Counts are
    /// bit-identical to the other strategies.
    Blocked,
    /// Measure the membership density `Σ n(R)` against its `M·N` worst
    /// case at build time and pick: [`CountingStrategy::Membership`]
    /// while the id lists stay cheap, [`CountingStrategy::Requery`]
    /// once materialising them would approach the dense extreme (see
    /// `ScanEngine`'s docs for the exact rule) — and when the
    /// membership path wins, upgrade to [`CountingStrategy::Blocked`]
    /// if the measured mask density clears the popcnt break-even.
    /// Counts are identical in every case — this knob only trades
    /// memory against per-world constant factors.
    Auto,
}

impl CountingStrategy {
    /// All selectable strategies (drives parse-error messages and
    /// ablation sweeps).
    pub const ALL: [CountingStrategy; 4] = [
        CountingStrategy::Membership,
        CountingStrategy::Requery,
        CountingStrategy::Blocked,
        CountingStrategy::Auto,
    ];

    /// Stable lowercase name (CLI/bench labels).
    pub fn name(&self) -> &'static str {
        match self {
            CountingStrategy::Membership => "membership",
            CountingStrategy::Requery => "requery",
            CountingStrategy::Blocked => "blocked",
            CountingStrategy::Auto => "auto",
        }
    }
}

impl std::fmt::Display for CountingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a [`CountingStrategy`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStrategyError {
    input: String,
}

impl std::fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown counting strategy {:?}; valid values: ",
            self.input
        )?;
        for (i, strategy) in CountingStrategy::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(strategy.name())?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseStrategyError {}

impl std::str::FromStr for CountingStrategy {
    type Err = ParseStrategyError;

    /// Parses the [`Display`](std::fmt::Display) name back
    /// (`membership`, `requery`, `blocked`, `auto`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CountingStrategy::ALL
            .into_iter()
            .find(|strategy| strategy.name() == s.trim())
            .ok_or_else(|| ParseStrategyError {
                input: s.to_string(),
            })
    }
}

/// How many contiguous Morton-rank shards the engine partitions its
/// blocked counting structures into.
///
/// Sharding splits the label-word axis into contiguous windows, each
/// owning a clipped view of the blocked membership CSR
/// ([`sfindex::BlockedMembership::clip_to_words`]); a region count
/// becomes the sum of per-shard popcnt partials, which lets one world
/// evaluation fan out across cores. Results are **bit-identical** for
/// every shard count — integer partial sums reassociate exactly, and
/// world generation draws fixed-size chunk substreams that are
/// independent of the shard layout — so this knob only trades
/// parallelism against per-shard overhead, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Shards {
    /// One shard per available core, clamped to the label-word count.
    #[default]
    Auto,
    /// A fixed shard count (at least 1).
    Fixed(usize),
}

impl Shards {
    /// The concrete shard count for an engine spanning `num_words`
    /// label words: `Auto` resolves to the available parallelism, and
    /// every request is clamped to `[1, max(num_words, 1)]` (a shard
    /// narrower than one word can never own anything).
    pub fn resolve(&self, num_words: usize) -> usize {
        let requested = match self {
            Shards::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Shards::Fixed(k) => *k,
        };
        requested.clamp(1, num_words.max(1))
    }
}

impl std::fmt::Display for Shards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Shards::Auto => f.write_str("auto"),
            Shards::Fixed(k) => write!(f, "{k}"),
        }
    }
}

/// Error from parsing a [`Shards`] value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseShardsError {
    input: String,
}

impl std::fmt::Display for ParseShardsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid shard count {:?}; expected \"auto\" or a positive integer",
            self.input
        )
    }
}

impl std::error::Error for ParseShardsError {}

impl std::str::FromStr for Shards {
    type Err = ParseShardsError;

    /// Parses the [`Display`](std::fmt::Display) form back (`auto` or
    /// a positive integer).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s == "auto" {
            return Ok(Shards::Auto);
        }
        match s.parse::<usize>() {
            Ok(k) if k >= 1 => Ok(Shards::Fixed(k)),
            _ => Err(ParseShardsError {
                input: s.to_string(),
            }),
        }
    }
}

impl Serialize for Shards {
    fn to_value(&self) -> serde::Value {
        match self {
            Shards::Auto => serde::Value::Str(String::from("auto")),
            Shards::Fixed(k) => serde::Value::U64(*k as u64),
        }
    }
}

impl Deserialize for Shards {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(s) = value.as_str() {
            return s
                .parse()
                .map_err(|e: ParseShardsError| serde::Error::msg(e.to_string()));
        }
        match value.as_u64() {
            Some(k) if k >= 1 => Ok(Shards::Fixed(k as usize)),
            _ => Err(serde::Error::msg(format!(
                "expected \"auto\" or a positive shard count, got {}",
                value.kind()
            ))),
        }
    }
}

/// Knobs for a spatial-fairness audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Significance level `α` (the paper's experiments use 0.005).
    pub alpha: f64,
    /// Number of simulated Monte Carlo worlds (`w − 1`). Must satisfy
    /// `⌊α·(worlds+1)⌋ ≥ 1` for significance to be reachable; 999 is
    /// the customary choice for `α = 0.005`.
    pub worlds: usize,
    /// Base RNG seed (worlds use independent derived streams).
    pub seed: u64,
    /// Which deviation direction the audit is sensitive to.
    pub direction: Direction,
    /// Alternate-world label model.
    pub null_model: NullModel,
    /// Per-world counting strategy.
    pub strategy: CountingStrategy,
    /// Spatial index backend answering the range-count queries (the
    /// `Q` in the paper's `O(M · N · Q)` cost model).
    pub backend: IndexBackend,
    /// Monte Carlo budget strategy: spend the full budget, or stop at
    /// the first batch where the verdict at `alpha` is decided.
    pub mc_strategy: McStrategy,
    /// World-generation algorithm version. [`WorldGen::Word`] (the
    /// default) draws Bernoulli labels 64 at a time from absolutely
    /// positioned chunk substreams, directly into the engine's
    /// layout-space label words; [`WorldGen::Scalar`] is the v1
    /// generator (one RNG value per point), kept selectable for
    /// replaying v1 results. The versions are statistically equivalent
    /// but consume the RNG stream differently, so this knob is part of
    /// the world-class identity `(null model, seed, worldgen)`
    /// everywhere worlds are shared or cached.
    pub worldgen: WorldGen,
    /// Shard count for the engine's blocked counting structures (see
    /// [`Shards`]). Results are bit-identical for every value; absent
    /// on pre-sharding wire payloads, which decode as [`Shards::Auto`].
    pub shards: Shards,
    /// Counting-kernel selection for the blocked popcnt sweeps (see
    /// [`KernelSelect`]): the pinned scalar reference, the portable
    /// unrolled loop, runtime-dispatched AVX2/AVX-512, or `Auto`
    /// (best detected + self-probed). Kernels produce bit-identical
    /// integer counts, so this knob — like `shards` and `parallel` —
    /// is pure performance; absent on pre-kernel wire payloads, which
    /// decode as [`KernelSelect::Auto`].
    pub kernel: KernelSelect,
    /// Per-region test statistic the audit maximises (see
    /// [`Statistic`]). Unlike `shards`/`kernel` this knob *changes
    /// results*, so it is part of the world-class identity everywhere
    /// worlds are shared or cached. Absent on pre-kernel wire
    /// payloads, which decode as [`Statistic::BernoulliLlr`] — the
    /// paper's statistic, reproduced bit for bit.
    pub statistic: Statistic,
    /// Evaluate worlds in parallel (results are identical either way).
    pub parallel: bool,
}

// Manual wire impls instead of the derive: `worldgen`, `shards`,
// `kernel`, and `statistic` were added after the v1 wire format
// shipped, and configs are embedded in every serialized
// `AuditReport`/response envelope — older payloads without the fields
// must keep decoding (`worldgen` absent means the v1 Scalar
// generator; `shards` and `kernel` absent mean Auto; `statistic`
// absent means the paper's Bernoulli LLR). The derive would
// hard-error on the missing fields. `statistic` is additionally
// *omitted when default*, so every response embedding a
// Bernoulli-LLR config serializes byte-identically to the
// pre-statistic wire format.
impl Serialize for AuditConfig {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            (String::from("alpha"), self.alpha.to_value()),
            (String::from("worlds"), self.worlds.to_value()),
            (String::from("seed"), self.seed.to_value()),
            (String::from("direction"), self.direction.to_value()),
            (String::from("null_model"), self.null_model.to_value()),
            (String::from("strategy"), self.strategy.to_value()),
            (String::from("backend"), self.backend.to_value()),
            (String::from("mc_strategy"), self.mc_strategy.to_value()),
            (String::from("worldgen"), self.worldgen.to_value()),
            (String::from("shards"), self.shards.to_value()),
            (String::from("kernel"), self.kernel.to_value()),
        ];
        if self.statistic != Statistic::BernoulliLlr {
            fields.push((String::from("statistic"), self.statistic.to_value()));
        }
        fields.push((String::from("parallel"), self.parallel.to_value()));
        serde::Value::Object(fields)
    }
}

impl Deserialize for AuditConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(AuditConfig {
            alpha: serde::get_field(value, "alpha")?,
            worlds: serde::get_field(value, "worlds")?,
            seed: serde::get_field(value, "seed")?,
            direction: serde::get_field(value, "direction")?,
            null_model: serde::get_field(value, "null_model")?,
            strategy: serde::get_field(value, "strategy")?,
            backend: serde::get_field(value, "backend")?,
            mc_strategy: serde::get_field(value, "mc_strategy")?,
            worldgen: match value.get("worldgen") {
                Some(v) => WorldGen::from_value(v)
                    .map_err(|e| serde::Error::msg(format!("field `worldgen`: {}", e.message)))?,
                // Absent on v1 payloads: the v1 generator.
                None => WorldGen::Scalar,
            },
            shards: match value.get("shards") {
                Some(v) => Shards::from_value(v)
                    .map_err(|e| serde::Error::msg(format!("field `shards`: {}", e.message)))?,
                // Absent on pre-sharding payloads.
                None => Shards::Auto,
            },
            kernel: match value.get("kernel") {
                Some(v) => KernelSelect::from_value(v)
                    .map_err(|e| serde::Error::msg(format!("field `kernel`: {}", e.message)))?,
                // Absent on pre-kernel payloads.
                None => KernelSelect::Auto,
            },
            statistic: match value.get("statistic") {
                Some(v) => Statistic::from_value(v)
                    .map_err(|e| serde::Error::msg(format!("field `statistic`: {}", e.message)))?,
                // Absent on pre-statistic payloads: the paper's LLR.
                None => Statistic::BernoulliLlr,
            },
            parallel: serde::get_field(value, "parallel")?,
        })
    }
}

impl AuditConfig {
    /// Creates a config at significance level `alpha` with the paper's
    /// defaults: 999 worlds, two-sided, Bernoulli null, membership
    /// counting, kd-tree backend, full Monte Carlo budget, word
    /// world generation, auto sharding, parallel.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        AuditConfig {
            alpha,
            worlds: 999,
            seed: 0,
            direction: Direction::TwoSided,
            null_model: NullModel::Bernoulli,
            strategy: CountingStrategy::Membership,
            backend: IndexBackend::KdTree,
            mc_strategy: McStrategy::FullBudget,
            worldgen: WorldGen::Word,
            shards: Shards::Auto,
            kernel: KernelSelect::Auto,
            statistic: Statistic::BernoulliLlr,
            parallel: true,
        }
    }

    /// The paper's experimental setting: `α = 0.005`, 999 worlds.
    pub fn paper() -> Self {
        Self::new(0.005)
    }

    /// Sets the Monte Carlo budget.
    pub fn with_worlds(mut self, worlds: usize) -> Self {
        assert!(worlds > 0, "need at least one simulated world");
        self.worlds = worlds;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the deviation direction.
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Sets the null model.
    pub fn with_null_model(mut self, null_model: NullModel) -> Self {
        self.null_model = null_model;
        self
    }

    /// Sets the counting strategy.
    pub fn with_strategy(mut self, strategy: CountingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the spatial index backend.
    pub fn with_backend(mut self, backend: IndexBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the Monte Carlo budget strategy.
    pub fn with_mc_strategy(mut self, mc_strategy: McStrategy) -> Self {
        if let McStrategy::EarlyStop { batch_size } = mc_strategy {
            assert!(batch_size > 0, "batch_size must be positive");
        }
        self.mc_strategy = mc_strategy;
        self
    }

    /// Enables batched early-stopping Monte Carlo with the default
    /// batch size (see [`McStrategy::EarlyStop`]).
    pub fn with_early_stop(self) -> Self {
        self.with_mc_strategy(McStrategy::early_stop())
    }

    /// Sets the world-generation algorithm version.
    pub fn with_worldgen(mut self, worldgen: WorldGen) -> Self {
        self.worldgen = worldgen;
        self
    }

    /// Sets the engine shard count (results are identical for every
    /// value; see [`Shards`]).
    pub fn with_shards(mut self, shards: Shards) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the counting-kernel selection (results are identical for
    /// every value; see [`KernelSelect`]).
    pub fn with_kernel(mut self, kernel: KernelSelect) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the per-region test statistic (this knob *changes
    /// results*; see [`Statistic`]).
    pub fn with_statistic(mut self, statistic: Statistic) -> Self {
        self.statistic = statistic;
        self
    }

    /// Disables parallel Monte Carlo (results unchanged).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Returns `true` when the Monte Carlo budget can reach
    /// significance at this `alpha` (i.e. `⌊α·w⌋ ≥ 1`).
    pub fn budget_sufficient(&self) -> bool {
        (self.alpha * (self.worlds + 1) as f64).floor() >= 1.0
    }
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AuditConfig::paper();
        assert_eq!(c.alpha, 0.005);
        assert_eq!(c.worlds, 999);
        assert_eq!(c.direction, Direction::TwoSided);
        assert_eq!(c.null_model, NullModel::Bernoulli);
        assert_eq!(c.backend, IndexBackend::KdTree);
        assert_eq!(c.mc_strategy, McStrategy::FullBudget);
        assert_eq!(
            c.worldgen,
            WorldGen::Word,
            "word-parallel v2 generation is the default; scalar remains \
             the v1 replay escape hatch"
        );
        assert_eq!(c.shards, Shards::Auto);
        assert!(c.budget_sufficient());
    }

    #[test]
    fn worldgen_selectable() {
        let c = AuditConfig::new(0.05).with_worldgen(WorldGen::Word);
        assert_eq!(c.worldgen, WorldGen::Word);
        for gen in WorldGen::ALL {
            assert_eq!(gen.to_string().parse::<WorldGen>().unwrap(), gen);
        }
    }

    #[test]
    fn builders_chain() {
        let c = AuditConfig::new(0.05)
            .with_worlds(99)
            .with_seed(7)
            .with_direction(Direction::Low)
            .with_null_model(NullModel::Permutation)
            .with_strategy(CountingStrategy::Requery)
            .with_backend(IndexBackend::Grid)
            .with_mc_strategy(McStrategy::EarlyStop { batch_size: 16 })
            .with_shards(Shards::Fixed(3))
            .sequential();
        assert_eq!(c.worlds, 99);
        assert_eq!(c.seed, 7);
        assert_eq!(c.direction, Direction::Low);
        assert_eq!(c.null_model, NullModel::Permutation);
        assert_eq!(c.strategy, CountingStrategy::Requery);
        assert_eq!(c.backend, IndexBackend::Grid);
        assert_eq!(c.mc_strategy, McStrategy::EarlyStop { batch_size: 16 });
        assert_eq!(c.shards, Shards::Fixed(3));
        assert!(!c.parallel);
        assert!(c.budget_sufficient());
    }

    #[test]
    fn early_stop_convenience() {
        let c = AuditConfig::new(0.05).with_early_stop();
        assert_eq!(c.mc_strategy, McStrategy::early_stop());
    }

    #[test]
    fn auto_strategy_selectable() {
        let c = AuditConfig::new(0.05).with_strategy(CountingStrategy::Auto);
        assert_eq!(c.strategy, CountingStrategy::Auto);
    }

    #[test]
    fn strategy_parse_round_trips() {
        for strategy in CountingStrategy::ALL {
            let shown = strategy.to_string();
            assert_eq!(shown.parse::<CountingStrategy>().unwrap(), strategy);
        }
        let err = "bitmap".parse::<CountingStrategy>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bitmap"), "{msg}");
        for strategy in CountingStrategy::ALL {
            assert!(msg.contains(strategy.name()), "{msg}");
        }
    }

    #[test]
    fn config_serde_round_trips_and_defaults_missing_worldgen() {
        let config = AuditConfig::new(0.01)
            .with_worlds(199)
            .with_seed(5)
            .with_strategy(CountingStrategy::Blocked)
            .with_worldgen(WorldGen::Word)
            .sequential();
        let json = serde_json::to_string(&config).unwrap();
        assert!(json.contains("\"worldgen\":\"Word\""), "{json}");
        let back: AuditConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        // A v1 config payload (no "worldgen" key — the shape embedded
        // in every pre-v2 serialized AuditReport) keeps decoding and
        // means the v1 Scalar generator.
        let v1 = r#"{"alpha": 0.005, "worlds": 999, "seed": 0,
                     "direction": "TwoSided", "null_model": "Bernoulli",
                     "strategy": "Membership", "backend": "KdTree",
                     "mc_strategy": "FullBudget", "parallel": true}"#;
        let config: AuditConfig = serde_json::from_str(v1).unwrap();
        assert_eq!(config.worldgen, WorldGen::Scalar);
        assert_eq!(config.shards, Shards::Auto);
        assert_eq!(
            config,
            AuditConfig::paper().with_worldgen(WorldGen::Scalar),
            "a v1 payload is today's defaults with the v1 generator"
        );
    }

    #[test]
    fn shards_parse_and_resolve() {
        assert_eq!("auto".parse::<Shards>().unwrap(), Shards::Auto);
        assert_eq!(" 8 ".parse::<Shards>().unwrap(), Shards::Fixed(8));
        assert!("0".parse::<Shards>().is_err());
        assert!("-2".parse::<Shards>().is_err());
        assert!("many".parse::<Shards>().is_err());
        for shards in [Shards::Auto, Shards::Fixed(1), Shards::Fixed(12)] {
            assert_eq!(shards.to_string().parse::<Shards>().unwrap(), shards);
        }
        // Fixed counts clamp to the word axis; Auto always resolves to
        // at least one shard.
        assert_eq!(Shards::Fixed(7).resolve(100), 7);
        assert_eq!(Shards::Fixed(7).resolve(3), 3);
        assert_eq!(Shards::Fixed(1).resolve(0), 1);
        assert!(Shards::Auto.resolve(1_000_000) >= 1);
        assert_eq!(Shards::Auto.resolve(1), 1);
    }

    #[test]
    fn shards_serde_round_trips_and_defaults_missing_field() {
        let fixed = AuditConfig::new(0.05).with_shards(Shards::Fixed(4));
        let json = serde_json::to_string(&fixed).unwrap();
        assert!(json.contains("\"shards\":4"), "{json}");
        let back: AuditConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shards, Shards::Fixed(4));
        let auto = AuditConfig::new(0.05);
        let json = serde_json::to_string(&auto).unwrap();
        assert!(json.contains("\"shards\":\"auto\""), "{json}");
        let back: AuditConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shards, Shards::Auto);
        assert!(serde_json::from_str::<Shards>("0").is_err());
        assert!(serde_json::from_str::<Shards>("\"several\"").is_err());
    }

    #[test]
    fn kernel_serde_round_trips_and_defaults_missing_field() {
        let forced = AuditConfig::new(0.05).with_kernel(KernelSelect::Portable);
        let json = serde_json::to_string(&forced).unwrap();
        assert!(json.contains("\"kernel\":\"Portable\""), "{json}");
        let back: AuditConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.kernel, KernelSelect::Portable);
        // Pre-kernel payloads (every config serialized before this
        // knob existed) keep decoding and mean Auto.
        let v1 = r#"{"alpha": 0.005, "worlds": 999, "seed": 0,
                     "direction": "TwoSided", "null_model": "Bernoulli",
                     "strategy": "Membership", "backend": "KdTree",
                     "mc_strategy": "FullBudget", "parallel": true}"#;
        let config: AuditConfig = serde_json::from_str(v1).unwrap();
        assert_eq!(config.kernel, KernelSelect::Auto);
        assert!(serde_json::from_str::<KernelSelect>("\"sse9\"").is_err());
        for select in KernelSelect::ALL {
            let json = serde_json::to_string(&select).unwrap();
            let back: KernelSelect = serde_json::from_str(&json).unwrap();
            assert_eq!(back, select);
        }
    }

    #[test]
    fn statistic_serde_skips_default_and_round_trips() {
        // The default statistic is OMITTED, so a Bernoulli-LLR config
        // serializes byte-identically to the pre-statistic format.
        let default = AuditConfig::new(0.05);
        let json = serde_json::to_string(&default).unwrap();
        assert!(!json.contains("statistic"), "{json}");
        let back: AuditConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.statistic, Statistic::BernoulliLlr);
        // Non-default statistics serialize their kebab token and round
        // trip.
        for statistic in [Statistic::EqualOppTpr, Statistic::MeanResidual] {
            let config = AuditConfig::new(0.05).with_statistic(statistic);
            let json = serde_json::to_string(&config).unwrap();
            assert!(
                json.contains(&format!("\"statistic\":\"{}\"", statistic.name())),
                "{json}"
            );
            let back: AuditConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, config);
        }
        // Pre-statistic payloads keep decoding and mean the LLR.
        let v1 = r#"{"alpha": 0.005, "worlds": 999, "seed": 0,
                     "direction": "TwoSided", "null_model": "Bernoulli",
                     "strategy": "Membership", "backend": "KdTree",
                     "mc_strategy": "FullBudget", "parallel": true}"#;
        let config: AuditConfig = serde_json::from_str(v1).unwrap();
        assert_eq!(config.statistic, Statistic::BernoulliLlr);
        assert!(serde_json::from_str::<Statistic>("\"poisson\"").is_err());
    }

    #[test]
    fn insufficient_budget_detected() {
        // 99 worlds cannot certify at alpha = 0.005 (floor(0.5) = 0).
        let c = AuditConfig::new(0.005).with_worlds(99);
        assert!(!c.budget_sufficient());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = AuditConfig::new(1.5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_worlds_rejected() {
        let _ = AuditConfig::new(0.05).with_worlds(0);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_rejected() {
        let _ = AuditConfig::new(0.05).with_mc_strategy(McStrategy::EarlyStop { batch_size: 0 });
    }
}
