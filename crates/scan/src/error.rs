//! Error types for audit construction.

/// Errors raised when assembling audit inputs from user data.
///
/// Programmer errors (inconsistent internal state) panic instead; these
/// variants cover conditions that depend on the *data* a caller feeds
/// in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// The outcome set has no observations.
    EmptyOutcomes,
    /// Locations and labels have different lengths.
    LengthMismatch {
        /// Number of locations provided.
        points: usize,
        /// Number of labels provided.
        labels: usize,
    },
    /// A location has a non-finite coordinate.
    NonFiniteLocation {
        /// Index of the offending observation.
        index: usize,
    },
    /// A continuous outcome pair produced a non-finite residual (see
    /// [`SpatialOutcomes::from_residuals`](crate::outcomes::SpatialOutcomes::from_residuals)).
    NonFiniteResidual {
        /// Index of the offending observation.
        index: usize,
    },
    /// The region set is empty.
    EmptyRegionSet,
    /// The outcomes are degenerate for the scan statistic: all
    /// positive or all negative (the test is vacuous; the paper notes
    /// the idealised definition "can only be satisfied by trivial
    /// classifiers").
    DegenerateOutcomes {
        /// Total observations.
        n: u64,
        /// Total positives.
        p: u64,
    },
    /// An audit request carries invalid knobs (the fields are public
    /// and wire-deserializable, so malformed values can arrive from
    /// outside the builder methods).
    InvalidRequest {
        /// What is wrong with the request.
        reason: String,
    },
    /// The index's aggregate range count disagrees with its member-id
    /// enumeration for a region. Every Monte Carlo world trusts the
    /// world-invariant `n(R)` measured at engine build, so a
    /// disagreement would silently corrupt every simulated `τ` — the
    /// engine validates the two answers against each other once at
    /// build time (in release builds too) and refuses to serve a
    /// substrate that fails.
    CountIntegrity {
        /// Region where the counts disagree.
        region: usize,
        /// `n(R)` from the aggregate range-count query.
        aggregate_n: u64,
        /// `n(R)` from enumerating member ids.
        enumerated_n: u64,
    },
    /// The index's member-id enumeration produced lists the blocked
    /// compilation rejects (e.g. the same id visited twice for one
    /// region). `Membership::build` sorts and range-checks what the
    /// substrate enumerates, but duplicates still get through it —
    /// compiling them into masks would silently undercount, so the
    /// engine surfaces the compilation error instead.
    MembershipIntegrity {
        /// The blocked compiler's rejection, verbatim.
        reason: String,
    },
}

impl ScanError {
    /// An [`ScanError::InvalidRequest`] with the given reason —
    /// convenience for the request-validation call sites (the scan
    /// layer's [`AuditRequest::validate`](crate::prepared::AuditRequest::validate)
    /// and the serving layer's submission guards build these).
    pub fn invalid_request(reason: impl Into<String>) -> Self {
        ScanError::InvalidRequest {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::EmptyOutcomes => write!(f, "outcome set has no observations"),
            ScanError::LengthMismatch { points, labels } => {
                write!(f, "{points} locations but {labels} labels")
            }
            ScanError::NonFiniteLocation { index } => {
                write!(f, "observation {index} has a non-finite coordinate")
            }
            ScanError::NonFiniteResidual { index } => {
                write!(f, "observation {index} has a non-finite residual")
            }
            ScanError::EmptyRegionSet => write!(f, "region set is empty"),
            ScanError::DegenerateOutcomes { n, p } => write!(
                f,
                "outcomes are degenerate (n={n}, p={p}): scan statistic is vacuous"
            ),
            ScanError::InvalidRequest { reason } => {
                write!(f, "invalid audit request: {reason}")
            }
            ScanError::CountIntegrity {
                region,
                aggregate_n,
                enumerated_n,
            } => write!(
                f,
                "count integrity violation in region {region}: aggregate n(R) = {aggregate_n} \
                 but id enumeration yields {enumerated_n}; refusing to serve a substrate whose \
                 counts disagree"
            ),
            ScanError::MembershipIntegrity { reason } => write!(
                f,
                "membership integrity violation: {reason}; refusing to serve a substrate whose \
                 member-id enumeration cannot compile into exact counting masks"
            ),
        }
    }
}

impl std::error::Error for ScanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ScanError::EmptyOutcomes
            .to_string()
            .contains("no observations"));
        let e = ScanError::LengthMismatch {
            points: 3,
            labels: 4,
        };
        assert!(e.to_string().contains("3 locations"));
        let e = ScanError::DegenerateOutcomes { n: 10, p: 10 };
        assert!(e.to_string().contains("degenerate"));
    }
}
