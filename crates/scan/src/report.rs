//! Audit results.

use crate::config::AuditConfig;
use crate::direction::Direction;
use serde::{Deserialize, Serialize};
use sfgeo::Region;

/// The audit's answer to "is it fair?".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The spatial-fairness null hypothesis is *not* rejected at the
    /// configured level: the observed outcomes are consistent with a
    /// single location-independent rate.
    Fair,
    /// The null is rejected: some region's outcome distribution differs
    /// significantly from the rest of the space.
    Unfair,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Fair => write!(f, "FAIR"),
            Verdict::Unfair => write!(f, "UNFAIR"),
        }
    }
}

/// One region's evidence in the audit (§3's identification step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionFinding {
    /// Index into the scanned region set.
    pub index: usize,
    /// The region geometry.
    pub region: Region,
    /// Scan-center index this region was built around, when the set
    /// has center structure (§4.3 square scans).
    pub center_id: Option<usize>,
    /// Observations inside (`n(R)`).
    pub n: u64,
    /// Positives inside (`p(R)`).
    pub p: u64,
    /// Local rate `ρ(R) = p/n`.
    pub rate: f64,
    /// Log-likelihood ratio (the log-domain SUL ranking key).
    pub llr: f64,
}

impl std::fmt::Display for RegionFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "region #{}: n={}, p={}, rate={:.3}, LLR={:.2} @ {}",
            self.index, self.n, self.p, self.rate, self.llr, self.region
        )
    }
}

/// Full result of a spatial-fairness audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Configuration the audit ran with.
    pub config: AuditConfig,
    /// Total observations `N`.
    pub n_total: u64,
    /// Total positives `P`.
    pub p_total: u64,
    /// Global rate `ρ = P/N` of the audited measure.
    pub rate: f64,
    /// Number of regions scanned.
    pub num_regions: usize,
    /// Description of the scanned region set.
    pub region_set: String,
    /// The test statistic `τ = max_R LLR(R)` of the real world.
    pub tau: f64,
    /// Index of the region attaining `τ`.
    pub best_region_index: usize,
    /// Monte Carlo p-value `k/w` of `τ`.
    pub p_value: f64,
    /// Critical LLR value at the configured `α` (regions above it are
    /// individually significant; the paper's "9.6 at the 0.005 level").
    pub critical_value: f64,
    /// All individually significant regions, sorted by LLR descending
    /// (the paper's ranking by SUL).
    ///
    /// Under early stopping the critical value these are filtered by
    /// comes from the truncated simulated distribution, so *marginal*
    /// findings can differ from a full-budget run (the verdict never
    /// does); see
    /// [`McStrategy::EarlyStop`](crate::config::McStrategy).
    pub findings: Vec<RegionFinding>,
    /// Monte Carlo worlds actually evaluated: equals the configured
    /// budget unless early stopping
    /// ([`McStrategy::EarlyStop`](crate::config::McStrategy)) decided
    /// the verdict sooner.
    pub worlds_evaluated: usize,
    /// The simulated max-statistic distribution (diagnostics; length =
    /// `worlds_evaluated`).
    pub simulated: Vec<f64>,
}

impl AuditReport {
    /// The audit verdict at the configured significance level.
    pub fn verdict(&self) -> Verdict {
        if self.p_value <= self.config.alpha {
            Verdict::Unfair
        } else {
            Verdict::Fair
        }
    }

    /// `true` iff the verdict is [`Verdict::Unfair`].
    pub fn is_unfair(&self) -> bool {
        self.verdict() == Verdict::Unfair
    }

    /// `true` iff the verdict is [`Verdict::Fair`].
    pub fn is_fair(&self) -> bool {
        self.verdict() == Verdict::Fair
    }

    /// The top-`k` findings by LLR (the paper's evidence step: "we
    /// then return the top-k regions as evidence").
    pub fn top_k(&self, k: usize) -> &[RegionFinding] {
        &self.findings[..k.min(self.findings.len())]
    }

    /// Serialises the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Spatial fairness audit")?;
        writeln!(
            f,
            "  data: N={}, P={}, rate={:.4}",
            self.n_total, self.p_total, self.rate
        )?;
        writeln!(f, "  regions: {} ({})", self.num_regions, self.region_set)?;
        writeln!(
            f,
            "  direction: {}, alpha={}, worlds={}",
            self.config.direction, self.config.alpha, self.config.worlds
        )?;
        if self.worlds_evaluated < self.config.worlds {
            writeln!(
                f,
                "  early stop: verdict decided after {} of {} worlds",
                self.worlds_evaluated, self.config.worlds
            )?;
        }
        writeln!(
            f,
            "  tau={:.3}, p-value={:.4}, critical LLR={:.3}",
            self.tau, self.p_value, self.critical_value
        )?;
        writeln!(
            f,
            "  verdict: {} ({} significant regions)",
            self.verdict(),
            self.findings.len()
        )?;
        for finding in self.top_k(5) {
            writeln!(f, "    {finding}")?;
        }
        Ok(())
    }
}

/// Compile-time sanity: keep `Direction` re-exported type in the public
/// report path so serialisation stays stable.
#[allow(dead_code)]
fn _assert_direction_serde(d: Direction) -> String {
    serde_json::to_string(&d).expect("direction serialises")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgeo::Rect;

    fn report(p_value: f64) -> AuditReport {
        AuditReport {
            config: AuditConfig::new(0.05).with_worlds(99),
            n_total: 100,
            p_total: 60,
            rate: 0.6,
            num_regions: 4,
            region_set: "test regions".into(),
            tau: 12.5,
            best_region_index: 2,
            p_value,
            critical_value: 9.6,
            findings: vec![RegionFinding {
                index: 2,
                region: Region::Rect(Rect::from_coords(0.0, 0.0, 1.0, 1.0)),
                center_id: None,
                n: 30,
                p: 28,
                rate: 28.0 / 30.0,
                llr: 12.5,
            }],
            worlds_evaluated: 99,
            simulated: vec![1.0; 99],
        }
    }

    #[test]
    fn verdict_thresholds() {
        assert_eq!(report(0.01).verdict(), Verdict::Unfair);
        assert_eq!(report(0.05).verdict(), Verdict::Unfair); // <= alpha
        assert_eq!(report(0.06).verdict(), Verdict::Fair);
        assert!(report(0.01).is_unfair());
        assert!(report(0.5).is_fair());
    }

    #[test]
    fn top_k_clamps() {
        let r = report(0.01);
        assert_eq!(r.top_k(0).len(), 0);
        assert_eq!(r.top_k(1).len(), 1);
        assert_eq!(r.top_k(10).len(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let r = report(0.02);
        let json = r.to_json();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn display_contains_verdict_and_stats() {
        let s = report(0.01).to_string();
        assert!(s.contains("UNFAIR"));
        assert!(s.contains("tau=12.500"));
        assert!(s.contains("N=100"));
    }

    #[test]
    fn finding_display() {
        let r = report(0.01);
        let s = r.findings[0].to_string();
        assert!(s.contains("n=30"));
        assert!(s.contains("LLR=12.50"));
    }
}
