//! The audit serving layer: **prepare → plan → execute**.
//!
//! A spatial-fairness audit is read-mostly: the expensive artifacts —
//! the spatial index, the region membership lists, the world-invariant
//! `n(R)` totals — depend only on the *dataset and regions*, while each
//! audit request varies only cheap knobs (direction, `α`, seed, Monte
//! Carlo budget, null model). This module splits the one-shot
//! [`Auditor::audit`](crate::audit::Auditor) pipeline into three phases
//! so those artifacts are built once and served many times:
//!
//! 1. **prepare** — [`PreparedAudit::prepare`] builds the immutable
//!    engine (index + membership + totals) from the dataset, regions,
//!    and the expensive [`AuditConfig`] knobs (backend, counting
//!    strategy).
//! 2. **plan** — [`ExecutionPlan::new`] groups a batch of
//!    [`AuditRequest`]s into *world classes* `(null model, seed,
//!    worldgen, statistic)`: requests in one class draw and score
//!    exactly the same simulated worlds, so
//!    each world is generated and recounted **once** and its per-region
//!    positives are replayed against every member request's direction.
//! 3. **execute** — [`PreparedAudit::execute`] walks each group's
//!    shared world stream in spans chosen by
//!    [`BudgetScheduler`](sfstats::montecarlo::BudgetScheduler):
//!    every span ends at the nearest early-stop checkpoint of any
//!    still-contested request, so worlds freed by futility/certainty
//!    stops are spent only on requests whose verdicts are still open.
//!    Worlds within a span are evaluated in parallel (rayon) with
//!    deterministic per-world RNG streams.
//!
//! **Bit-identity guarantee.** Every per-request
//! [`AuditReport`] — verdict, p-value, critical value, findings, and
//! the `simulated` prefix — is exactly what a standalone
//! [`Auditor::audit`](crate::audit::Auditor) with the equivalent
//! config produces. World values depend only on `(seed, index, null
//! model)`; the per-direction LLR fold is the same code path
//! ([`ScanEngine::eval_world_into`]); and the stopping rule is replayed
//! by the same [`WorldLane`](sfstats::montecarlo::WorldLane) a
//! standalone adaptive run uses. The cross-checks live in the
//! `serve_equivalence` proptests.

use crate::config::{AuditConfig, NullModel, Statistic, WorldGen};
use crate::direction::Direction;
use crate::engine::{RealScan, ScanEngine};
use crate::error::ScanError;
use crate::outcomes::SpatialOutcomes;
use crate::regions::RegionSet;
use crate::report::{AuditReport, RegionFinding};
use crate::worldcache::{ResumePoint, TauRows, WorldCache};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sfindex::{BitLabels, Substrate, MAX_FUSED_WORLDS};
use sfstats::montecarlo::{BudgetScheduler, McStrategy, MonteCarloResult, WorldLane};
use sfstats::rng::world_rng;

/// One audit request: the cheap per-query knobs of an audit. The
/// expensive knobs (dataset, regions, index backend, counting strategy)
/// live in the [`PreparedAudit`] the request runs against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditRequest {
    /// Significance level `α`.
    pub alpha: f64,
    /// Monte Carlo budget (`w − 1` simulated worlds).
    pub worlds: usize,
    /// Base RNG seed. Requests sharing `(null_model, seed, worldgen)`
    /// draw the same worlds and are served from one shared stream.
    pub seed: u64,
    /// Deviation direction the audit is sensitive to.
    pub direction: Direction,
    /// Alternate-world label model.
    pub null_model: NullModel,
    /// Monte Carlo budget strategy.
    pub mc_strategy: McStrategy,
    /// World-generation algorithm version (part of the world-class
    /// identity: [`WorldGen::Scalar`] and [`WorldGen::Word`] consume
    /// the RNG stream differently, so they never share worlds).
    pub worldgen: WorldGen,
    /// Per-region test statistic (part of the world-class identity:
    /// two statistics score the same label worlds differently, so
    /// their τ streams must never share cached rows).
    pub statistic: Statistic,
}

// Manual wire impls instead of the derive: `worldgen` and `statistic`
// were added after the v1 wire format shipped, so request payloads
// without the fields must keep decoding (they mean the v1 Scalar
// generator and the paper's Bernoulli LLR). The derive would
// hard-error on the missing fields. `statistic` is additionally
// *omitted when default*, so a Bernoulli-LLR request serializes
// byte-identically to the pre-statistic wire format.
impl Serialize for AuditRequest {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            (String::from("alpha"), self.alpha.to_value()),
            (String::from("worlds"), self.worlds.to_value()),
            (String::from("seed"), self.seed.to_value()),
            (String::from("direction"), self.direction.to_value()),
            (String::from("null_model"), self.null_model.to_value()),
            (String::from("mc_strategy"), self.mc_strategy.to_value()),
            (String::from("worldgen"), self.worldgen.to_value()),
        ];
        if self.statistic != Statistic::BernoulliLlr {
            fields.push((String::from("statistic"), self.statistic.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for AuditRequest {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(AuditRequest {
            alpha: serde::get_field(value, "alpha")?,
            worlds: serde::get_field(value, "worlds")?,
            seed: serde::get_field(value, "seed")?,
            direction: serde::get_field(value, "direction")?,
            null_model: serde::get_field(value, "null_model")?,
            mc_strategy: serde::get_field(value, "mc_strategy")?,
            worldgen: match value.get("worldgen") {
                Some(v) => WorldGen::from_value(v)
                    .map_err(|e| serde::Error::msg(format!("field `worldgen`: {}", e.message)))?,
                // Absent on v1 payloads: the v1 generator.
                None => WorldGen::Scalar,
            },
            statistic: match value.get("statistic") {
                Some(v) => Statistic::from_value(v)
                    .map_err(|e| serde::Error::msg(format!("field `statistic`: {}", e.message)))?,
                // Absent on pre-statistic payloads: the paper's LLR.
                None => Statistic::BernoulliLlr,
            },
        })
    }
}

impl AuditRequest {
    /// A request at significance level `alpha` with the base config's
    /// defaults: 999 worlds, seed 0, two-sided, Bernoulli null, full
    /// budget, word world generation.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        AuditRequest {
            alpha,
            worlds: 999,
            seed: 0,
            direction: Direction::TwoSided,
            null_model: NullModel::Bernoulli,
            mc_strategy: McStrategy::FullBudget,
            worldgen: WorldGen::Word,
            statistic: Statistic::BernoulliLlr,
        }
    }

    /// The request equivalent to `config`'s per-query knobs.
    pub fn from_config(config: &AuditConfig) -> Self {
        AuditRequest {
            alpha: config.alpha,
            worlds: config.worlds,
            seed: config.seed,
            direction: config.direction,
            null_model: config.null_model,
            mc_strategy: config.mc_strategy,
            worldgen: config.worldgen,
            statistic: config.statistic,
        }
    }

    /// Sets the Monte Carlo budget.
    pub fn with_worlds(mut self, worlds: usize) -> Self {
        assert!(worlds > 0, "need at least one simulated world");
        self.worlds = worlds;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the deviation direction.
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Sets the null model.
    pub fn with_null_model(mut self, null_model: NullModel) -> Self {
        self.null_model = null_model;
        self
    }

    /// Sets the Monte Carlo budget strategy.
    pub fn with_mc_strategy(mut self, mc_strategy: McStrategy) -> Self {
        if let McStrategy::EarlyStop { batch_size } = mc_strategy {
            assert!(batch_size > 0, "batch_size must be positive");
        }
        self.mc_strategy = mc_strategy;
        self
    }

    /// Sets the world-generation algorithm version.
    pub fn with_worldgen(mut self, worldgen: WorldGen) -> Self {
        self.worldgen = worldgen;
        self
    }

    /// Sets the per-region test statistic.
    pub fn with_statistic(mut self, statistic: Statistic) -> Self {
        self.statistic = statistic;
        self
    }

    /// The full [`AuditConfig`] this request denotes against `base`
    /// (the prepared engine's expensive knobs + this request's cheap
    /// ones) — also the config a bit-identical standalone
    /// [`Auditor`](crate::audit::Auditor) run would use.
    pub fn apply_to(&self, mut base: AuditConfig) -> AuditConfig {
        base.alpha = self.alpha;
        base.worlds = self.worlds;
        base.seed = self.seed;
        base.direction = self.direction;
        base.null_model = self.null_model;
        base.mc_strategy = self.mc_strategy;
        base.worldgen = self.worldgen;
        base.statistic = self.statistic;
        base
    }

    /// Validates field invariants without panicking. The builders
    /// assert these, but the fields are pub and wire-deserializable —
    /// serving layers should call this on untrusted requests *before*
    /// queueing them (a queue that defers validation to execution
    /// would lose its whole batch to one malformed payload).
    ///
    /// # Errors
    /// [`ScanError::InvalidRequest`] naming the offending knob:
    /// `alpha` outside `(0, 1)`, zero `worlds`, or a zero early-stop
    /// batch size.
    pub fn validate(&self) -> Result<(), ScanError> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(ScanError::invalid_request(format!(
                "alpha must be in (0,1), got {}",
                self.alpha
            )));
        }
        if self.worlds == 0 {
            return Err(ScanError::invalid_request(
                "need at least one simulated world",
            ));
        }
        if let McStrategy::EarlyStop { batch_size } = self.mc_strategy {
            if batch_size == 0 {
                return Err(ScanError::invalid_request("batch_size must be positive"));
            }
        }
        Ok(())
    }

    /// The world class this request draws simulated worlds from:
    /// requests agreeing on it share every world. The generator
    /// version is part of the class — `Scalar` and `Word` streams are
    /// statistically equivalent but value-wise disjoint — and so is
    /// the statistic: two statistics draw identical label worlds but
    /// score them differently, so their τ streams must never mix.
    fn world_class(&self) -> (NullModel, u64, WorldGen, Statistic) {
        (self.null_model, self.seed, self.worldgen, self.statistic)
    }
}

impl Default for AuditRequest {
    /// The paper's setting: `α = 0.005`, 999 worlds.
    fn default() -> Self {
        AuditRequest::new(0.005)
    }
}

/// The identity of one simulated world stream: the four knobs that
/// fully determine every world in it. Two requests share worlds iff
/// their classes are equal, and a world's labels depend only on
/// `(null_model, seed, worldgen)` plus its index — `statistic` rides
/// along because it picks the τ kernel the counts are folded through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldClass {
    /// Null model the worlds are drawn from.
    pub null_model: NullModel,
    /// Seed of the world stream.
    pub seed: u64,
    /// Generator version of the world stream.
    pub worldgen: WorldGen,
    /// Test statistic the worlds are scored with.
    pub statistic: Statistic,
}

/// A replaceable world-evaluation backend: fills a span of the world
/// stream's τ matrix exactly as the in-process engine would.
///
/// This is the seam a distributed coordinator plugs into. The
/// contract is **bit-identity**: for every world `w` in
/// `first..first + out.len() / eval_dirs.len()` and direction `d`,
/// `out[(w - first) * eval_dirs.len() + d]` must equal what
/// [`PreparedAudit`]'s own evaluator computes — generate world `w`
/// from `world_rng(class.seed, w)`, count it, fold through the
/// [`TauKernel`](sfstats::kernel::TauKernel). Implementations that
/// sum exact integer count partials over a word-window partition and
/// replay the same fold (see `ScanEngine::fold_counts`) satisfy this
/// by construction.
///
/// `fine` is the caller's axis hint (span narrower than the thread
/// pool); implementations may ignore it — it never changes values,
/// only scheduling.
///
/// Calls may arrive concurrently from rayon workers (group fan-out ×
/// span chunks), hence `Send + Sync`. `Debug` keeps the owning
/// service's derive intact.
pub trait WorldEvaluator: Send + Sync + std::fmt::Debug {
    /// Evaluates worlds `first..` into the world-major matrix `out`
    /// (`out.len()` = span length × `eval_dirs.len()`).
    fn eval_span(
        &self,
        class: WorldClass,
        eval_dirs: &[Direction],
        first: usize,
        out: &mut [f64],
        fine: bool,
    );
}

/// One world-sharing group of an [`ExecutionPlan`]: the requests that
/// draw from one simulated world stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanGroup {
    /// Null model every member draws worlds from.
    pub null_model: NullModel,
    /// Seed of the shared world stream.
    pub seed: u64,
    /// Generator version of the shared world stream.
    pub worldgen: WorldGen,
    /// Test statistic every member scores worlds with.
    pub statistic: Statistic,
    /// Indices into the planned request batch, in submission order.
    pub members: Vec<usize>,
    /// Distinct member directions in first-appearance order; each
    /// world is counted once and its LLR folded per entry here.
    pub directions: Vec<Direction>,
    /// Largest member budget — the most worlds this group can need.
    pub max_budget: usize,
}

/// A batch of requests grouped into world classes, ready to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    requests: Vec<AuditRequest>,
    groups: Vec<PlanGroup>,
}

impl ExecutionPlan {
    /// Plans a batch: groups requests by `(null model, seed, worldgen,
    /// statistic)` in first-appearance order, recording each group's
    /// distinct directions and maximum budget.
    ///
    /// # Panics
    /// Panics if any request carries invalid knobs (see
    /// [`AuditRequest::validate`] — serving layers validate untrusted
    /// requests before they get here).
    pub fn new(requests: Vec<AuditRequest>) -> Self {
        let mut groups: Vec<PlanGroup> = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            if let Err(e) = request.validate() {
                panic!("{e}");
            }
            let class = request.world_class();
            let group = match groups
                .iter_mut()
                .find(|g| (g.null_model, g.seed, g.worldgen, g.statistic) == class)
            {
                Some(group) => group,
                None => {
                    groups.push(PlanGroup {
                        null_model: request.null_model,
                        seed: request.seed,
                        worldgen: request.worldgen,
                        statistic: request.statistic,
                        members: Vec::new(),
                        directions: Vec::new(),
                        max_budget: 0,
                    });
                    groups.last_mut().expect("just pushed")
                }
            };
            group.members.push(i);
            if !group.directions.contains(&request.direction) {
                group.directions.push(request.direction);
            }
            group.max_budget = group.max_budget.max(request.worlds);
        }
        ExecutionPlan { requests, groups }
    }

    /// The planned requests, in submission order.
    pub fn requests(&self) -> &[AuditRequest] {
        &self.requests
    }

    /// The world-sharing groups.
    pub fn groups(&self) -> &[PlanGroup] {
        &self.groups
    }

    /// Total worlds the batch would cost without sharing or early
    /// stopping (`Σ` member budgets).
    pub fn budget_total(&self) -> usize {
        self.requests.iter().map(|r| r.worlds).sum()
    }

    /// Upper bound on unique worlds with sharing (`Σ` group max
    /// budgets); the shortfall vs [`ExecutionPlan::budget_total`] is
    /// the work sharing saves before early stopping saves more.
    pub fn shared_budget_total(&self) -> usize {
        self.groups.iter().map(|g| g.max_budget).sum()
    }
}

/// Accounting for one executed batch. Counters are `u64` end-to-end
/// so lifetime aggregation (`ServerStats` in `sfserve`) absorbs them
/// without a single lossy cast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BatchStats {
    /// Requests served.
    pub requests: u64,
    /// World-sharing groups the batch planned into.
    pub groups: u64,
    /// Worlds actually generated and counted this batch (each one
    /// serving every compatible request).
    pub unique_worlds: u64,
    /// Worlds answered from a prior batch's cached τ-stream instead of
    /// being simulated (the cross-batch [`WorldCache`] resume path).
    pub worlds_replayed: u64,
    /// Groups that replayed at least one cached world.
    pub cache_hits: u64,
    /// `Σ` per-request `worlds_evaluated` — what sequential single
    /// audits would have generated and counted.
    pub lane_worlds: u64,
    /// `Σ` per-request budgets — the cost ceiling without sharing or
    /// early stopping.
    pub budget_total: u64,
}

impl BatchStats {
    /// Lane-worlds that were *replayed* from this batch's shared
    /// streams instead of being regenerated
    /// (`lane_worlds − unique_worlds − worlds_replayed`).
    pub fn worlds_shared(&self) -> u64 {
        self.lane_worlds
            .saturating_sub(self.unique_worlds + self.worlds_replayed)
    }

    /// Worlds early stopping saved across the batch
    /// (`budget_total − lane_worlds`).
    pub fn worlds_saved(&self) -> u64 {
        self.budget_total.saturating_sub(self.lane_worlds)
    }
}

/// The immutable phase-1 artifact: everything an audit needs that
/// depends only on the dataset and regions.
///
/// Build it once with [`PreparedAudit::prepare`], then serve any number
/// of [`AuditRequest`]s with [`PreparedAudit::run`] /
/// [`PreparedAudit::run_batch`] — no per-request index or membership
/// construction, and batched requests share simulated worlds whenever
/// their world class matches.
pub struct PreparedAudit {
    engine: ScanEngine<Substrate>,
    regions: RegionSet,
    base: AuditConfig,
    n_total: u64,
    p_total: u64,
    rate: f64,
}

impl std::fmt::Debug for PreparedAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedAudit")
            .field("n_total", &self.n_total)
            .field("p_total", &self.p_total)
            .field("num_regions", &self.regions.len())
            .field("backend", &self.base.backend)
            .field("resolved_strategy", &self.engine.resolved_strategy())
            .finish_non_exhaustive()
    }
}

// The sfnet executor shares one prepared artifact per session across
// its worker pool as `Arc<PreparedAudit>`. Enforce the contract at
// compile time so a future non-Sync field (an `Rc`, a `RefCell`
// scratch buffer) fails here, at the definition, instead of deep in
// the server's spawn sites.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    let _ = assert_send_sync::<PreparedAudit>;
};

impl PreparedAudit {
    /// Phase 1: validates the inputs and builds the scan engine from
    /// the expensive `config` knobs (index backend, counting strategy).
    /// The remaining config fields become the base every request's
    /// report config is derived from.
    ///
    /// # Errors
    /// * [`ScanError::EmptyRegionSet`] — no regions to scan.
    /// * [`ScanError::DegenerateOutcomes`] — all labels equal; the scan
    ///   statistic is vacuous.
    /// * [`ScanError::CountIntegrity`] — the index backend's aggregate
    ///   counts disagree with its id enumeration (engine build
    ///   cross-validates them once rather than letting every simulated
    ///   `τ` silently corrupt).
    pub fn prepare(
        outcomes: &SpatialOutcomes,
        regions: &RegionSet,
        config: AuditConfig,
    ) -> Result<Self, ScanError> {
        outcomes.check_auditable()?;
        if regions.is_empty() {
            return Err(ScanError::EmptyRegionSet);
        }
        let engine = ScanEngine::build_with(outcomes, regions, config.backend, config.strategy)?
            .with_shards(config.shards)
            .with_kernel(config.kernel)
            .with_statistic(config.statistic);
        Ok(PreparedAudit {
            engine,
            regions: regions.clone(),
            base: config,
            n_total: outcomes.len() as u64,
            p_total: outcomes.positives(),
            rate: outcomes.rate(),
        })
    }

    /// The base config requests are completed against.
    pub fn base_config(&self) -> &AuditConfig {
        &self.base
    }

    /// The shared scan engine.
    pub fn engine(&self) -> &ScanEngine<Substrate> {
        &self.engine
    }

    /// Number of candidate regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Number of audited observations.
    pub fn num_points(&self) -> usize {
        self.n_total as usize
    }

    /// Runs one request. Equivalent to a single-element
    /// [`PreparedAudit::run_batch`] — and bit-identical to
    /// [`Auditor::audit`](crate::audit::Auditor) with
    /// [`AuditRequest::apply_to`]`(base_config)`.
    pub fn run(&self, request: &AuditRequest) -> AuditReport {
        self.run_batch(std::slice::from_ref(request))
            .pop()
            .expect("one request yields one report")
    }

    /// Phases 2+3 for a batch: plans the requests into world-sharing
    /// groups and executes them, returning one report per request in
    /// submission order.
    pub fn run_batch(&self, requests: &[AuditRequest]) -> Vec<AuditReport> {
        self.run_batch_with_stats(requests).0
    }

    /// [`PreparedAudit::run_batch`] plus the batch accounting.
    pub fn run_batch_with_stats(
        &self,
        requests: &[AuditRequest],
    ) -> (Vec<AuditReport>, BatchStats) {
        self.execute(&ExecutionPlan::new(requests.to_vec()))
    }

    /// [`PreparedAudit::run_batch_with_stats`] resuming from (and
    /// extending) a cross-batch [`WorldCache`].
    pub fn run_batch_cached(
        &self,
        requests: &[AuditRequest],
        cache: &mut WorldCache,
    ) -> (Vec<AuditReport>, BatchStats) {
        self.execute_cached(&ExecutionPlan::new(requests.to_vec()), cache)
    }

    /// [`PreparedAudit::run_batch_cached`] with an optional
    /// [`WorldEvaluator`] backend replacing the in-process world
    /// simulation. `None` is exactly `run_batch_cached`.
    pub fn run_batch_cached_with(
        &self,
        requests: &[AuditRequest],
        cache: &mut WorldCache,
        evaluator: Option<&dyn WorldEvaluator>,
    ) -> (Vec<AuditReport>, BatchStats) {
        self.execute_inner(
            &ExecutionPlan::new(requests.to_vec()),
            Some(cache),
            evaluator,
        )
    }

    /// Phase 3: executes a plan against the shared engine. Reports come
    /// back in the plan's request order.
    pub fn execute(&self, plan: &ExecutionPlan) -> (Vec<AuditReport>, BatchStats) {
        self.execute_inner(plan, None, None)
    }

    /// Phase 3 with cross-batch world caching: each group replays the
    /// cached τ-stream prefix of its world class through the ordinary
    /// lane stopping rule and simulates only the un-cached suffix,
    /// which is then committed back so the *next* batch resumes even
    /// further in. Reports are bit-identical to [`PreparedAudit::execute`]
    /// by construction — the lanes consume the same values in the same
    /// order whether a world was replayed or simulated.
    ///
    /// The cache must only ever be used with the engine that filled it
    /// (cached τ values are meaningless against other data); keep one
    /// cache per `PreparedAudit`.
    pub fn execute_cached(
        &self,
        plan: &ExecutionPlan,
        cache: &mut WorldCache,
    ) -> (Vec<AuditReport>, BatchStats) {
        self.execute_inner(plan, Some(cache), None)
    }

    /// One loop for both phase-3 paths: a cold run is a resume with no
    /// cache to consult and nothing retained for one.
    ///
    /// When parallel execution is on and the plan holds several world
    /// classes, execution is staged: every group's cache resume
    /// happens first (the only step needing `&mut` cache access), the
    /// groups themselves — each with its own seeded,
    /// scheduling-independent world stream — fan out over the rayon
    /// pool, and the commits land back in plan order (transient
    /// memory: every in-flight group's fresh rows, the price of the
    /// fan-out). A sequential run instead streams resume → execute →
    /// commit one group at a time, so a byte-capped cache bounds peak
    /// memory to roughly the cap plus one group's rows, exactly as
    /// the pre-parallel executor did. Results are bit-identical on
    /// both paths, because nothing a group computes depends on any
    /// other group.
    fn execute_inner(
        &self,
        plan: &ExecutionPlan,
        mut cache: Option<&mut WorldCache>,
        evaluator: Option<&dyn WorldEvaluator>,
    ) -> (Vec<AuditReport>, BatchStats) {
        let mut reports: Vec<Option<AuditReport>> = Vec::new();
        reports.resize_with(plan.requests().len(), || None);
        let mut stats = BatchStats {
            requests: plan.requests().len() as u64,
            groups: plan.groups().len() as u64,
            ..BatchStats::default()
        };
        let collect_fresh = cache.is_some();
        // Resume: move a class's cached prefix out (a no-copy move;
        // the commit reinstalls it). Groups are distinct world
        // classes, so their resume points are disjoint.
        let resume_group = |cache: &mut Option<&mut WorldCache>, group: &PlanGroup| match cache {
            Some(cache) => cache.resume(
                group.null_model,
                group.seed,
                group.worldgen,
                group.statistic,
                &group.directions,
            ),
            None => ResumePoint {
                eval_dirs: group.directions.clone(),
                prefix: TauRows::new(group.directions.len()),
            },
        };
        // Commit + assemble, in plan order on both paths.
        let mut finish = |cache: &mut Option<&mut WorldCache>,
                          group: &PlanGroup,
                          resume: ResumePoint,
                          output: GroupOutput| {
            stats.unique_worlds += output.unique_worlds as u64;
            stats.worlds_replayed += output.replayed as u64;
            stats.lane_worlds += output.lane_worlds;
            stats.budget_total += output.budget_total;
            if output.replayed > 0 {
                stats.cache_hits += 1;
            }
            if let Some(cache) = cache {
                cache.commit(
                    group.null_model,
                    group.seed,
                    group.worldgen,
                    group.statistic,
                    resume.eval_dirs,
                    resume.prefix,
                    output.replayed,
                    output.fresh,
                );
            }
            for (ri, report) in output.reports {
                reports[ri] = Some(report);
            }
        };
        if self.base.parallel && plan.groups().len() > 1 {
            // Fan the classes out. This nests with the per-span
            // parallelism inside run_world_group on purpose: batches
            // usually hold far fewer classes than the machine has
            // cores, so class-only parallelism would leave most cores
            // idle, while the nested fan-out stays CPU-bound with
            // bounded oversubscription (classes × cores worst case) —
            // measured faster than either level alone on the serve
            // workload.
            let resumes: Vec<ResumePoint> = plan
                .groups()
                .iter()
                .map(|group| resume_group(&mut cache, group))
                .collect();
            let run_group = |gi: usize| -> GroupOutput {
                self.execute_group(
                    plan,
                    &plan.groups()[gi],
                    &resumes[gi],
                    collect_fresh,
                    evaluator,
                )
            };
            let outputs: Vec<GroupOutput> = (0..plan.groups().len())
                .into_par_iter()
                .map(run_group)
                .collect();
            for ((group, resume), output) in plan.groups().iter().zip(resumes).zip(outputs) {
                finish(&mut cache, group, resume, output);
            }
        } else {
            // Stream the classes: each group's rows are committed (and
            // the cache cap enforced) before the next group simulates.
            for group in plan.groups() {
                let resume = resume_group(&mut cache, group);
                let output = self.execute_group(plan, group, &resume, collect_fresh, evaluator);
                finish(&mut cache, group, resume, output);
            }
        }
        let reports = reports
            .into_iter()
            .map(|r| r.expect("every request belongs to exactly one group"))
            .collect();
        (reports, stats)
    }

    /// Executes one world-sharing group: scans the real world once per
    /// distinct direction, then walks the shared world stream through
    /// [`run_world_group`] — replaying the class's cached prefix first,
    /// simulating the rest — folding each world's per-region counts
    /// into every member lane that still needs it. Pure with respect
    /// to the cache and the other groups, which is what lets
    /// [`PreparedAudit::execute_inner`] fan world classes out in
    /// parallel.
    fn execute_group(
        &self,
        plan: &ExecutionPlan,
        group: &PlanGroup,
        resume: &ResumePoint,
        collect_fresh: bool,
        evaluator: Option<&dyn WorldEvaluator>,
    ) -> GroupOutput {
        // The cache dictates the per-world direction list: a superset
        // of the group's needs, so replayed rows line up and fresh rows
        // stay column-complete for future batches. Extra directions
        // cost one more LLR fold per region — counting dominates.
        let eval_dirs = &resume.eval_dirs;
        let lane_dirs = member_direction_indices(plan.requests(), &group.members, eval_dirs);
        // Real-world scans are direction-dependent but request-invariant:
        // one per direction some member actually uses, shared across the
        // group. Cache-carried directions no member requests this batch
        // get no scan (worlds still evaluate them — the cheap LLR fold —
        // to keep cached rows column-complete); their observed slot is
        // NaN and, by construction, never read.
        let mut reals: Vec<Option<RealScan>> = Vec::new();
        reals.resize_with(eval_dirs.len(), || None);
        for &di in &lane_dirs {
            if reals[di].is_none() {
                reals[di] = Some(self.engine.scan_real_with(group.statistic, eval_dirs[di]));
            }
        }
        let observed: Vec<f64> = reals
            .iter()
            .map(|r| r.as_ref().map_or(f64::NAN, |real| real.tau))
            .collect();
        // `fine` is the work-splitter's axis choice (see
        // [`run_world_group`]): when a span holds fewer worlds than
        // the pool has threads, each world fans its own generation
        // chunks and shard partials out instead. Both paths are
        // bit-identical (chunk substreams are absolutely positioned;
        // shard partials are exact integer sums), so the choice is
        // pure scheduling.
        let eval_batch = |first: usize, out: &mut [f64], fine: bool| {
            // A plugged-in evaluator (e.g. a distributed coordinator)
            // replaces exactly this sweep; its contract is to produce
            // the same bits (see [`WorldEvaluator`]).
            if let Some(evaluator) = evaluator {
                evaluator.eval_span(
                    WorldClass {
                        null_model: group.null_model,
                        seed: group.seed,
                        worldgen: group.worldgen,
                        statistic: group.statistic,
                    },
                    eval_dirs,
                    first,
                    out,
                    fine,
                );
                return;
            }
            // One fused sweep per batch: generate the batch's worlds
            // (per-world RNG streams — world w's labels are identical
            // whatever batch it lands in), then count them all in one
            // CSR pass (ScanEngine::eval_worlds_into).
            let count = out.len() / eval_dirs.len();
            let mut worlds = Vec::with_capacity(count);
            for k in 0..count {
                let mut rng = world_rng(group.seed, (first + k) as u64);
                worlds.push(if fine {
                    self.engine
                        .generate_world_par(group.null_model, group.worldgen, &mut rng)
                } else {
                    self.engine
                        .generate_world_with(group.null_model, group.worldgen, &mut rng)
                });
            }
            let refs: Vec<&BitLabels> = worlds.iter().collect();
            if fine {
                self.engine
                    .eval_worlds_into_sharded_with(group.statistic, &refs, eval_dirs, out);
            } else {
                self.engine
                    .eval_worlds_into_with(group.statistic, &refs, eval_dirs, out);
            }
        };
        let run = run_world_group(
            plan.requests(),
            &group.members,
            &lane_dirs,
            &observed,
            self.base.parallel,
            &resume.prefix,
            collect_fresh,
            eval_batch,
        );

        // Assemble per-request reports from each lane's truncated
        // distribution and its direction's shared real scan.
        let mut lane_worlds = 0u64;
        let mut budget_total = 0u64;
        let mut reports = Vec::with_capacity(group.members.len());
        for ((result, &ri), &di) in run.results.into_iter().zip(&group.members).zip(&lane_dirs) {
            let request = &plan.requests()[ri];
            lane_worlds += result.worlds_evaluated as u64;
            budget_total += request.worlds as u64;
            let real = reals[di].as_ref().expect("member directions are scanned");
            let p_value = result.p_value();
            let critical_value = result.critical_value(request.alpha);
            reports.push((
                ri,
                AuditReport {
                    config: request.apply_to(self.base),
                    n_total: self.n_total,
                    p_total: self.p_total,
                    rate: self.rate,
                    num_regions: self.regions.len(),
                    region_set: self.regions.description().to_string(),
                    tau: real.tau,
                    best_region_index: real.best_index,
                    p_value,
                    critical_value,
                    findings: build_findings(real, &self.regions, critical_value),
                    worlds_evaluated: result.worlds_evaluated,
                    simulated: result.simulated,
                },
            ));
        }
        GroupOutput {
            reports,
            replayed: run.replayed,
            unique_worlds: run.unique_worlds,
            fresh: run.fresh,
            lane_worlds,
            budget_total,
        }
    }
}

/// Everything one executed group hands back to the sequential
/// commit/assembly stage: per-request reports tagged with their batch
/// position, plus the world accounting the cache and [`BatchStats`]
/// need.
struct GroupOutput {
    reports: Vec<(usize, AuditReport)>,
    replayed: usize,
    unique_worlds: usize,
    fresh: TauRows,
    lane_worlds: u64,
    budget_total: u64,
}

/// Distinct member directions in first-appearance order, paired with
/// each member's index into that list.
pub(crate) fn distinct_directions(
    requests: &[AuditRequest],
    members: &[usize],
) -> (Vec<Direction>, Vec<usize>) {
    let mut directions: Vec<Direction> = Vec::new();
    for &i in members {
        if !directions.contains(&requests[i].direction) {
            directions.push(requests[i].direction);
        }
    }
    let lane_dirs = member_direction_indices(requests, members, &directions);
    (directions, lane_dirs)
}

/// Each member's index into `directions` — a constant-time table
/// lookup per member. The table is built once per group (O(D) over
/// the tiny direction alphabet), replacing the old per-member rescan
/// of the direction list (O(members × D) position() calls).
fn member_direction_indices(
    requests: &[AuditRequest],
    members: &[usize],
    directions: &[Direction],
) -> Vec<usize> {
    let mut table = [usize::MAX; Direction::ALL.len()];
    for (i, d) in directions.iter().enumerate() {
        let slot = &mut table[d.ordinal()];
        if *slot == usize::MAX {
            *slot = i;
        }
    }
    members
        .iter()
        .map(|&i| {
            let di = table[requests[i].direction.ordinal()];
            assert_ne!(di, usize::MAX, "every member direction is recorded");
            di
        })
        .collect()
}

/// Outcome of [`run_world_group`]: per-member results plus the world
/// accounting a cross-batch cache needs to commit the run.
pub(crate) struct GroupRun {
    /// One [`MonteCarloResult`] per member, in `members` order — each
    /// bit-identical to a standalone adaptive run of that request.
    pub results: Vec<MonteCarloResult>,
    /// Worlds served from the cached prefix instead of simulated.
    pub replayed: usize,
    /// Worlds newly simulated.
    pub unique_worlds: usize,
    /// The newly simulated per-direction rows, in stream order starting
    /// at world index `replayed` (the cached prefix is consumed first).
    /// Empty unless `collect_fresh` was set — retaining every row only
    /// pays off when a cache will commit them.
    pub fresh: TauRows,
}

/// The engine-agnostic core of batched execution: walks one shared
/// world stream for a group of member requests, resuming from an
/// optional cached stream prefix.
///
/// Builds a [`WorldLane`] per member (observed statistic taken from its
/// direction's entry in `observed`), then evaluates
/// [`BudgetScheduler`] spans. Worlds whose index falls inside `cached`
/// are *replayed* — their flat per-direction rows are fed to the lanes
/// as-is ([`WorldLane::feed_strided`]), no simulation — and only
/// indices past the cached prefix call `eval_world` (in parallel when
/// `parallel` is set; per-world independent RNG streams inside
/// `eval_world` keep that deterministic). Because the lanes cannot
/// tell a replayed value from a simulated one, a resumed run is
/// bit-identical to a cold run by construction.
///
/// `eval_worlds` receives the index of a *batch's* first world, an
/// output slot spanning the whole batch (`W · stride` values,
/// world-major: world `k` of the batch owns
/// `out[k * stride..(k + 1) * stride]`, one `τ` per entry of the
/// group's evaluated direction list; `lane_dirs[m]` maps member `m`
/// into it, and `cached` rows must align with the same list) — and
/// the work-splitter's axis flag: `false` means the caller is already
/// fanning *batches* out (the coarse axis) and the evaluation must
/// stay sequential inside; `true` means the span holds fewer batches
/// than the pool has threads, batches are walked sequentially, and
/// the evaluation should fan its own finer axes (generation chunks,
/// engine shards) out instead. Batches hold up to
/// [`MAX_FUSED_WORLDS`] worlds (the last batch of a span shorter), so
/// a fused counting engine loads each CSR run once per batch instead
/// of once per world; the callback derives the batch's world count
/// from `out.len()`. The splitter prefers the coarse axis whenever it
/// can fill the machine — one task per batch has no per-batch
/// coordination overhead — and both axes are bit-identical by
/// construction (world `w`'s RNG stream and fold are independent of
/// which batch evaluates it), so the flag is pure scheduling. Each
/// span is evaluated into **one flat reusable buffer** carved into
/// per-batch chunks, so the span loop performs no per-world heap
/// allocation (the old `Vec<Vec<f64>>` boxes). With `collect_fresh`,
/// the simulated rows are appended to the flat [`GroupRun::fresh`]
/// matrix for a cache commit; without it the buffer is simply reused
/// span after span.
///
/// Both the Bernoulli executor above and the Poisson rate batch
/// ([`crate::rates::audit_rates_batch`]) run on this loop, so the
/// stopping/scheduling semantics cannot drift between them.
#[allow(clippy::too_many_arguments)] // one call site per executor; a config struct would only rename the positions
pub(crate) fn run_world_group<F>(
    requests: &[AuditRequest],
    members: &[usize],
    lane_dirs: &[usize],
    observed: &[f64],
    parallel: bool,
    cached: &TauRows,
    collect_fresh: bool,
    eval_worlds: F,
) -> GroupRun
where
    F: Fn(usize, &mut [f64], bool) + Sync,
{
    let stride = observed.len();
    debug_assert!(stride > 0, "a group evaluates at least one direction");
    debug_assert!(
        cached.is_empty() || cached.stride() == stride,
        "cached rows must align with the evaluated direction list"
    );
    let mut lanes: Vec<WorldLane> = members
        .iter()
        .zip(lane_dirs)
        .map(|(&i, &di)| {
            let r = &requests[i];
            WorldLane::new(observed[di], r.alpha, r.mc_strategy, r.worlds)
        })
        .collect();
    let mut fresh = TauRows::new(stride);
    let mut span_buf: Vec<f64> = Vec::new();
    let mut replayed = 0usize;
    let mut unique_worlds = 0usize;
    let mut scheduler = BudgetScheduler::new();
    while let Some(span) = scheduler.next_span(&lanes) {
        // Spans are contiguous from 0, so the cached prefix is consumed
        // exactly once, in order, before any world is simulated.
        let cut = span.end.min(cached.worlds()).max(span.start);
        let simulated = span.end - cut;
        span_buf.clear();
        span_buf.resize(simulated * stride, 0.0);
        let batch = stride * MAX_FUSED_WORLDS;
        if parallel && simulated >= MAX_FUSED_WORLDS * rayon::current_num_threads() {
            // Coarse axis: enough world batches to fill the machine.
            span_buf
                .par_chunks_mut(batch)
                .enumerate()
                .for_each(|(c, out)| eval_worlds(cut + c * MAX_FUSED_WORLDS, out, false));
        } else if parallel {
            // Fine axis: a short span (early-stop tail, tiny budget)
            // cannot feed every core one batch — walk batches in order
            // and let each one fan generation chunks/shard partials
            // out instead.
            for (c, out) in span_buf.chunks_mut(batch).enumerate() {
                eval_worlds(cut + c * MAX_FUSED_WORLDS, out, true);
            }
        } else {
            for (c, out) in span_buf.chunks_mut(batch).enumerate() {
                eval_worlds(cut + c * MAX_FUSED_WORLDS, out, false);
            }
        }
        replayed += cut - span.start;
        unique_worlds += simulated;
        // Every active lane sits at the span start and is committed to
        // the whole span (scheduler invariant), so feeding the cached
        // segment then the simulated segment per lane pushes exactly
        // the values the per-world loop used to; done lanes consume
        // nothing.
        let cached_part = if cut > span.start {
            &cached.values()[span.start * stride..cut * stride]
        } else {
            &[][..]
        };
        for (lane, &di) in lanes.iter_mut().zip(lane_dirs) {
            lane.feed_strided(cached_part, stride, di);
            lane.feed_strided(&span_buf, stride, di);
        }
        if collect_fresh {
            fresh.extend_from_values(&span_buf);
        }
    }
    GroupRun {
        results: lanes.into_iter().map(WorldLane::into_result).collect(),
        replayed,
        unique_worlds,
        fresh,
    }
}

/// Evidence assembly shared by every execution path: individually
/// significant regions, ranked by LLR descending (SUL ranking).
pub(crate) fn build_findings(
    real: &RealScan,
    regions: &RegionSet,
    critical_value: f64,
) -> Vec<RegionFinding> {
    let mut findings: Vec<RegionFinding> = real
        .llrs
        .iter()
        .enumerate()
        .filter(|(_, &llr)| llr > critical_value)
        .map(|(i, &llr)| {
            let c = real.counts[i];
            RegionFinding {
                index: i,
                region: regions.regions()[i].clone(),
                center_id: regions.center_id(i),
                n: c.n,
                p: c.p,
                rate: if c.n == 0 {
                    f64::NAN
                } else {
                    c.p as f64 / c.n as f64
                },
                llr,
            }
        })
        .collect();
    findings.sort_by(|a, b| b.llr.partial_cmp(&a.llr).expect("LLRs are finite"));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Auditor;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Point, Rect};

    fn outcomes(n: usize, seed: u64, split: bool) -> SpatialOutcomes {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..10.0);
            let y: f64 = rng.gen_range(0.0..10.0);
            let rate = if split && x < 5.0 { 0.85 } else { 0.3 };
            points.push(Point::new(x, y));
            labels.push(rng.gen_bool(rate));
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn grid() -> RegionSet {
        RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
    }

    fn base() -> AuditConfig {
        AuditConfig::new(0.05).with_worlds(99).with_seed(3)
    }

    #[test]
    fn plan_groups_by_world_class() {
        let r = AuditRequest::new(0.05).with_worlds(99);
        let batch = vec![
            r.with_seed(1),
            r.with_seed(1).with_direction(Direction::High),
            r.with_seed(2),
            r.with_seed(1).with_null_model(NullModel::Permutation),
            r.with_seed(1).with_worlds(199),
        ];
        let plan = ExecutionPlan::new(batch);
        assert_eq!(plan.groups().len(), 3);
        let g0 = &plan.groups()[0];
        assert_eq!(g0.members, vec![0, 1, 4]);
        assert_eq!(g0.directions, vec![Direction::TwoSided, Direction::High]);
        assert_eq!(g0.max_budget, 199);
        assert_eq!(plan.groups()[1].members, vec![2]);
        assert_eq!(plan.groups()[2].members, vec![3]);
        assert_eq!(plan.budget_total(), 99 * 4 + 199);
        assert_eq!(plan.shared_budget_total(), 199 + 99 + 99);
    }

    #[test]
    fn batched_reports_match_standalone_audits() {
        let o = outcomes(1200, 1, true);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let requests = vec![
            AuditRequest::from_config(&base()),
            AuditRequest::from_config(&base()).with_direction(Direction::High),
            AuditRequest::from_config(&base()).with_direction(Direction::Low),
            AuditRequest::from_config(&base()).with_seed(9),
            AuditRequest::from_config(&base())
                .with_mc_strategy(McStrategy::EarlyStop { batch_size: 16 }),
        ];
        let (reports, stats) = prepared.run_batch_with_stats(&requests);
        assert_eq!(reports.len(), requests.len());
        for (request, report) in requests.iter().zip(&reports) {
            let expected = Auditor::new(request.apply_to(base()))
                .audit(&o, &rs)
                .unwrap();
            assert_eq!(*report, expected, "request {request:?}");
        }
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.groups, 2);
        assert!(
            stats.worlds_shared() > 0,
            "same-class requests must share worlds: {stats:?}"
        );
    }

    #[test]
    fn single_run_equals_batch_of_one() {
        let o = outcomes(600, 2, true);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let request = AuditRequest::from_config(&base());
        let solo = prepared.run(&request);
        let batch = prepared.run_batch(std::slice::from_ref(&request));
        assert_eq!(batch, vec![solo]);
    }

    #[test]
    fn batch_order_is_request_order() {
        let o = outcomes(600, 3, true);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let a = AuditRequest::from_config(&base()).with_seed(1);
        let b = AuditRequest::from_config(&base()).with_seed(2);
        let fwd = prepared.run_batch(&[a, b]);
        let rev = prepared.run_batch(&[b, a]);
        assert_eq!(fwd[0], rev[1]);
        assert_eq!(fwd[1], rev[0]);
    }

    #[test]
    fn early_stop_savings_are_reallocated_not_lost() {
        // Fair data: the futility stop fires fast for early-stop lanes
        // while a full-budget lane keeps the stream alive; unique
        // worlds stay bounded by the largest single need.
        let o = outcomes(1500, 4, false);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let stopper = AuditRequest::from_config(&base())
            .with_mc_strategy(McStrategy::EarlyStop { batch_size: 8 });
        let full = AuditRequest::from_config(&base());
        let (reports, stats) = prepared.run_batch_with_stats(&[stopper, full]);
        assert!(reports[0].worlds_evaluated < reports[1].worlds_evaluated);
        assert_eq!(reports[1].worlds_evaluated, 99);
        assert_eq!(stats.unique_worlds, 99, "shared stream generated once");
        assert_eq!(
            stats.lane_worlds,
            (reports[0].worlds_evaluated + reports[1].worlds_evaluated) as u64
        );
        assert!(stats.worlds_saved() > 0);
    }

    #[test]
    fn sequential_base_config_matches_parallel() {
        let o = outcomes(800, 5, true);
        let rs = grid();
        let requests = [
            AuditRequest::from_config(&base()),
            AuditRequest::from_config(&base()).with_direction(Direction::High),
        ];
        let par = PreparedAudit::prepare(&o, &rs, base())
            .unwrap()
            .run_batch(&requests);
        let seq = PreparedAudit::prepare(&o, &rs, base().sequential())
            .unwrap()
            .run_batch(&requests);
        for (a, mut b) in par.into_iter().zip(seq) {
            b.config.parallel = true;
            assert_eq!(a, b, "parallel and sequential batches must agree");
        }
    }

    #[test]
    fn prepare_validates_inputs() {
        let o = outcomes(100, 6, false);
        let empty = RegionSet::from_regions(vec![]);
        assert_eq!(
            PreparedAudit::prepare(&o, &empty, base()).unwrap_err(),
            ScanError::EmptyRegionSet
        );
        let degenerate = SpatialOutcomes::new(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
            vec![true, true],
        )
        .unwrap();
        assert!(matches!(
            PreparedAudit::prepare(&degenerate, &grid(), base()).unwrap_err(),
            ScanError::DegenerateOutcomes { .. }
        ));
    }

    #[test]
    fn empty_batch_is_empty() {
        let o = outcomes(200, 7, false);
        let prepared = PreparedAudit::prepare(&o, &grid(), base()).unwrap();
        let (reports, stats) = prepared.run_batch_with_stats(&[]);
        assert!(reports.is_empty());
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.unique_worlds, 0);
    }

    #[test]
    fn repeated_batch_is_served_from_the_world_cache() {
        let o = outcomes(900, 8, true);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let requests = vec![
            AuditRequest::from_config(&base()),
            AuditRequest::from_config(&base()).with_direction(Direction::High),
        ];
        let mut cache = WorldCache::new();
        let (cold, cold_stats) = prepared.run_batch_cached(&requests, &mut cache);
        assert_eq!(cold_stats.worlds_replayed, 0);
        assert_eq!(cold_stats.unique_worlds, 99);
        // The exact same batch again: zero new simulated worlds, every
        // report bit-identical.
        let (warm, warm_stats) = prepared.run_batch_cached(&requests, &mut cache);
        assert_eq!(warm, cold);
        assert_eq!(warm_stats.unique_worlds, 0, "{warm_stats:?}");
        assert_eq!(warm_stats.worlds_replayed, 99);
        assert_eq!(warm_stats.cache_hits, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().worlds_replayed, 99);
    }

    #[test]
    fn extended_budget_simulates_only_the_uncached_suffix() {
        let o = outcomes(700, 9, true);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let small = AuditRequest::from_config(&base()).with_worlds(40);
        let big = AuditRequest::from_config(&base()).with_worlds(99);
        let mut cache = WorldCache::new();
        let (_, s1) = prepared.run_batch_cached(std::slice::from_ref(&small), &mut cache);
        assert_eq!(s1.unique_worlds, 40);
        let (extended, s2) = prepared.run_batch_cached(std::slice::from_ref(&big), &mut cache);
        assert_eq!(s2.worlds_replayed, 40);
        assert_eq!(s2.unique_worlds, 99 - 40, "only the suffix is simulated");
        // And a smaller budget afterwards costs nothing new.
        let (shrunk, s3) = prepared.run_batch_cached(std::slice::from_ref(&small), &mut cache);
        assert_eq!(s3.unique_worlds, 0);
        assert_eq!(s3.worlds_replayed, 40);
        // Both resumed runs are bit-identical to cold standalone runs.
        assert_eq!(extended[0], prepared.run(&big));
        assert_eq!(shrunk[0], prepared.run(&small));
    }

    #[test]
    fn new_direction_resimulates_then_covers_the_union() {
        let o = outcomes(800, 10, true);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let two_sided = AuditRequest::from_config(&base());
        let high = AuditRequest::from_config(&base()).with_direction(Direction::High);
        let mut cache = WorldCache::new();
        prepared.run_batch_cached(std::slice::from_ref(&two_sided), &mut cache);
        // A direction the cache has not seen: full re-simulation…
        let (r_high, s_high) = prepared.run_batch_cached(std::slice::from_ref(&high), &mut cache);
        assert_eq!(s_high.worlds_replayed, 0);
        assert_eq!(s_high.unique_worlds, 99);
        assert_eq!(r_high[0], prepared.run(&high));
        // …after which the entry covers BOTH directions.
        let both = vec![two_sided, high];
        let (warm, s_both) = prepared.run_batch_cached(&both, &mut cache);
        assert_eq!(s_both.unique_worlds, 0, "{s_both:?}");
        assert_eq!(warm, prepared.run_batch(&both));
    }

    #[test]
    fn cached_early_stop_replays_to_the_same_stopping_world() {
        // Fair data: the early stopper fires futility fast; the cached
        // prefix must replay it to exactly the same stopping point.
        let o = outcomes(1000, 11, false);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let stopper = AuditRequest::from_config(&base())
            .with_mc_strategy(McStrategy::EarlyStop { batch_size: 8 });
        let mut cache = WorldCache::new();
        let (cold, s_cold) = prepared.run_batch_cached(std::slice::from_ref(&stopper), &mut cache);
        let (warm, s_warm) = prepared.run_batch_cached(std::slice::from_ref(&stopper), &mut cache);
        assert_eq!(warm, cold);
        assert_eq!(s_warm.unique_worlds, 0);
        assert_eq!(
            s_warm.worlds_replayed as usize, cold[0].worlds_evaluated,
            "replay stops exactly where the cold run stopped ({s_cold:?})"
        );
    }

    #[test]
    fn worldgen_versions_are_distinct_world_classes() {
        let r = AuditRequest::new(0.05)
            .with_worlds(99)
            .with_worldgen(WorldGen::Scalar);
        let plan = ExecutionPlan::new(vec![
            r,
            r.with_worldgen(WorldGen::Word),
            r,
            r.with_worldgen(WorldGen::Word)
                .with_direction(Direction::High),
        ]);
        assert_eq!(plan.groups().len(), 2, "scalar and word never share worlds");
        assert_eq!(plan.groups()[0].worldgen, WorldGen::Scalar);
        assert_eq!(plan.groups()[0].members, vec![0, 2]);
        assert_eq!(plan.groups()[1].worldgen, WorldGen::Word);
        assert_eq!(plan.groups()[1].members, vec![1, 3]);
    }

    #[test]
    fn word_batches_match_standalone_word_audits() {
        let o = outcomes(900, 12, true);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let requests = vec![
            AuditRequest::from_config(&base()).with_worldgen(WorldGen::Word),
            AuditRequest::from_config(&base())
                .with_worldgen(WorldGen::Word)
                .with_direction(Direction::High),
            // A scalar rider in the same batch (worldgen is explicit:
            // the default is Word now).
            AuditRequest::from_config(&base()).with_worldgen(WorldGen::Scalar),
        ];
        let (reports, stats) = prepared.run_batch_with_stats(&requests);
        assert_eq!(stats.groups, 2);
        for (request, report) in requests.iter().zip(&reports) {
            let expected = Auditor::new(request.apply_to(base()))
                .audit(&o, &rs)
                .unwrap();
            assert_eq!(*report, expected, "request {request:?}");
        }
        // Word and Scalar simulated streams are genuinely different.
        assert_ne!(reports[0].simulated, reports[2].simulated);
    }

    #[test]
    fn word_world_cache_replays_word_batches() {
        let o = outcomes(700, 13, true);
        let rs = grid();
        let prepared = PreparedAudit::prepare(&o, &rs, base()).unwrap();
        let word = AuditRequest::from_config(&base()).with_worldgen(WorldGen::Word);
        let mut cache = WorldCache::new();
        let (cold, s_cold) = prepared.run_batch_cached(std::slice::from_ref(&word), &mut cache);
        assert_eq!(s_cold.unique_worlds, 99);
        // The same request replays entirely; a Scalar request of the
        // same (null model, seed) must NOT touch the Word prefix.
        let scalar = AuditRequest::from_config(&base()).with_worldgen(WorldGen::Scalar);
        let (warm, s_warm) = prepared.run_batch_cached(std::slice::from_ref(&word), &mut cache);
        assert_eq!(warm, cold);
        assert_eq!(s_warm.unique_worlds, 0);
        assert_eq!(s_warm.worlds_replayed, 99);
        let (_, s_scalar) = prepared.run_batch_cached(std::slice::from_ref(&scalar), &mut cache);
        assert_eq!(
            s_scalar.worlds_replayed, 0,
            "scalar classes never replay word prefixes"
        );
        assert_eq!(s_scalar.unique_worlds, 99);
    }

    #[test]
    fn parallel_class_execution_matches_sequential_class_walk() {
        // Many distinct world classes in one batch: the rayon fan-out
        // over classes must be bit-identical to the sequential walk.
        let o = outcomes(800, 14, true);
        let rs = grid();
        let requests: Vec<AuditRequest> = (0..6)
            .map(|i| {
                let mut r = AuditRequest::from_config(&base()).with_seed(100 + i as u64);
                if i % 2 == 0 {
                    r = r.with_worldgen(WorldGen::Word);
                }
                if i % 3 == 0 {
                    r = r.with_null_model(NullModel::Permutation);
                }
                r
            })
            .collect();
        let par = PreparedAudit::prepare(&o, &rs, base())
            .unwrap()
            .run_batch(&requests);
        let seq = PreparedAudit::prepare(&o, &rs, base().sequential())
            .unwrap()
            .run_batch(&requests);
        for (a, mut b) in par.into_iter().zip(seq) {
            b.config.parallel = true;
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sharded_prepared_audits_are_bit_identical_to_unsharded() {
        use crate::config::{CountingStrategy, Shards};
        // The sharded engine must reproduce every report byte — τ,
        // p-value, critical value, findings, simulated prefix — across
        // world classes and directions, for every shard count.
        let o = outcomes(900, 15, true);
        let rs = grid();
        let blocked = base().with_strategy(CountingStrategy::Blocked);
        let requests = vec![
            AuditRequest::from_config(&blocked),
            AuditRequest::from_config(&blocked).with_direction(Direction::High),
            AuditRequest::from_config(&blocked).with_worldgen(WorldGen::Scalar),
            AuditRequest::from_config(&blocked).with_null_model(NullModel::Permutation),
            AuditRequest::from_config(&blocked)
                .with_mc_strategy(McStrategy::EarlyStop { batch_size: 8 }),
        ];
        let unsharded = PreparedAudit::prepare(&o, &rs, blocked.with_shards(Shards::Fixed(1)))
            .unwrap()
            .run_batch(&requests);
        for k in [2usize, 3, 7] {
            let sharded = PreparedAudit::prepare(&o, &rs, blocked.with_shards(Shards::Fixed(k)))
                .unwrap()
                .run_batch(&requests);
            for (a, mut b) in unsharded.iter().zip(sharded) {
                // The shard knob is recorded in the report config but
                // must change nothing else.
                b.config.shards = a.config.shards;
                assert_eq!(*a, b, "shards={k}");
            }
        }
    }

    #[test]
    fn request_serde_defaults_missing_worldgen_to_scalar() {
        // v1 wire payloads (no "worldgen" key) must keep decoding as
        // the v1 generator; the new field round-trips when present.
        let v1 = r#"{"alpha": 0.05, "worlds": 99, "seed": 3, "direction": "TwoSided",
                     "null_model": "Bernoulli", "mc_strategy": "FullBudget"}"#;
        let request: AuditRequest = serde_json::from_str(v1).unwrap();
        assert_eq!(request.worldgen, WorldGen::Scalar);
        assert_eq!(request.worlds, 99);
        let word = AuditRequest::new(0.05).with_worldgen(WorldGen::Word);
        let json = serde_json::to_string(&word).unwrap();
        assert!(json.contains("\"worldgen\":\"Word\""), "{json}");
        let back: AuditRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, word);
    }

    #[test]
    fn request_serde_round_trip() {
        let request = AuditRequest::new(0.01)
            .with_worlds(199)
            .with_seed(5)
            .with_direction(Direction::Low)
            .with_null_model(NullModel::Permutation)
            .with_mc_strategy(McStrategy::early_stop())
            .with_worldgen(WorldGen::Word);
        let json = serde_json::to_string(&request).unwrap();
        let back: AuditRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_request_alpha_rejected_at_plan_time() {
        let mut request = AuditRequest::new(0.05);
        request.alpha = 2.0;
        let _ = ExecutionPlan::new(vec![request]);
    }
}
