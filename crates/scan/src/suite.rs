//! One-call audit suites.
//!
//! A real deployment rarely runs a single test: the paper itself audits
//! two-sided (Figure 5), one-sided low (Figure 11, "red") and one-sided
//! high (Figure 12, "green") on the same data and region set. The
//! suite runs all three with one engine configuration and decorates
//! every finding with a Wilson confidence interval for its local rate,
//! giving an auditor the complete §4.3-style picture in one call.

use crate::config::AuditConfig;
use crate::direction::Direction;
use crate::error::ScanError;
use crate::identify::select_non_overlapping;
use crate::outcomes::SpatialOutcomes;
use crate::prepared::{AuditRequest, PreparedAudit};
use crate::regions::RegionSet;
use crate::report::{AuditReport, RegionFinding};
use serde::{Deserialize, Serialize};
use sfstats::interval::{wilson_interval, ProportionInterval, Z_95};
use sfstats::rng::derive_seed;

/// A finding decorated with its rate confidence interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatedFinding {
    /// The underlying finding.
    pub finding: RegionFinding,
    /// Wilson 95% interval for the region's local rate.
    pub rate_ci: ProportionInterval,
}

impl std::fmt::Display for AnnotatedFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rate CI [{:.3}, {:.3}]",
            self.finding, self.rate_ci.lo, self.rate_ci.hi
        )
    }
}

/// Results of one direction within a suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectionalResult {
    /// The direction audited.
    pub direction: Direction,
    /// The full report.
    pub report: AuditReport,
    /// Non-overlapping evidence (the §4.3 presentation pass),
    /// decorated with confidence intervals.
    pub evidence: Vec<AnnotatedFinding>,
}

/// A complete three-direction audit of one outcome set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Two-sided result (the headline verdict).
    pub two_sided: DirectionalResult,
    /// One-sided low ("red", under-served regions).
    pub low: DirectionalResult,
    /// One-sided high ("green", over-served regions).
    pub high: DirectionalResult,
}

impl SuiteReport {
    /// The headline verdict (two-sided).
    pub fn verdict(&self) -> crate::report::Verdict {
        self.two_sided.report.verdict()
    }

    /// Serialises the suite as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("suite serialisation cannot fail")
    }
}

impl std::fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Audit suite: {} (two-sided p={:.4})",
            self.verdict(),
            self.two_sided.report.p_value
        )?;
        for dir in [&self.two_sided, &self.low, &self.high] {
            writeln!(
                f,
                "  {}: {} significant, {} non-overlapping",
                dir.direction,
                dir.report.findings.len(),
                dir.evidence.len()
            )?;
            for e in dir.evidence.iter().take(3) {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}

/// Runs the three-direction suite.
///
/// Each direction gets an independent Monte Carlo seed derived from the
/// base config's seed, so the three calibrations are independent while
/// the whole suite stays deterministic.
///
/// A thin client of the serving layer: the engine is prepared **once**
/// and the three directions run as one batch over it (the derived seeds
/// put each direction in its own world class, so no worlds are shared —
/// but the index, membership lists, and region totals are).
pub fn run_suite(
    config: AuditConfig,
    outcomes: &SpatialOutcomes,
    regions: &RegionSet,
) -> Result<SuiteReport, ScanError> {
    let prepared = PreparedAudit::prepare(outcomes, regions, config)?;
    let request = |direction: Direction, tag: &str| -> AuditRequest {
        AuditRequest::from_config(&config)
            .with_direction(direction)
            .with_seed(derive_seed(config.seed, tag))
    };
    let mut reports = prepared.run_batch(&[
        request(Direction::TwoSided, "suite-two-sided"),
        request(Direction::Low, "suite-low"),
        request(Direction::High, "suite-high"),
    ]);
    let mut decorate = |direction: Direction| -> DirectionalResult {
        let report = reports.remove(0);
        let evidence = select_non_overlapping(&report.findings)
            .into_iter()
            .map(|finding| AnnotatedFinding {
                rate_ci: wilson_interval(finding.p, finding.n, Z_95),
                finding,
            })
            .collect();
        DirectionalResult {
            direction,
            report,
            evidence,
        }
    };
    Ok(SuiteReport {
        two_sided: decorate(Direction::TwoSided),
        low: decorate(Direction::Low),
        high: decorate(Direction::High),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sfgeo::{Point, Rect};

    fn split_outcomes(n: usize, seed: u64) -> SpatialOutcomes {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..10.0);
            let y: f64 = rng.gen_range(0.0..10.0);
            let rate = if x < 5.0 { 0.8 } else { 0.3 };
            points.push(Point::new(x, y));
            labels.push(rng.gen_bool(rate));
        }
        SpatialOutcomes::new(points, labels).unwrap()
    }

    fn regions() -> RegionSet {
        RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
    }

    #[test]
    fn suite_runs_all_three_directions() {
        let o = split_outcomes(3000, 1);
        let cfg = AuditConfig::new(0.01).with_worlds(199).with_seed(2);
        let suite = run_suite(cfg, &o, &regions()).unwrap();
        assert!(suite.two_sided.report.is_unfair());
        assert!(suite.low.report.is_unfair());
        assert!(suite.high.report.is_unfair());
        // Directions are recorded correctly.
        assert_eq!(suite.low.direction, Direction::Low);
        assert_eq!(suite.high.direction, Direction::High);
        // Evidence is non-empty and annotated with sane intervals.
        for dir in [&suite.two_sided, &suite.low, &suite.high] {
            assert!(!dir.evidence.is_empty());
            for e in &dir.evidence {
                assert!(e.rate_ci.contains(e.finding.rate));
            }
        }
    }

    #[test]
    fn low_and_high_evidence_sit_on_their_sides() {
        let o = split_outcomes(3000, 3);
        let cfg = AuditConfig::new(0.01).with_worlds(199).with_seed(4);
        let suite = run_suite(cfg, &o, &regions()).unwrap();
        for e in &suite.low.evidence {
            assert!(
                e.finding.region.center().x > 5.0,
                "red evidence on the right half"
            );
        }
        for e in &suite.high.evidence {
            assert!(
                e.finding.region.center().x < 5.0,
                "green evidence on the left half"
            );
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let o = split_outcomes(800, 5);
        let cfg = AuditConfig::new(0.05).with_worlds(99).with_seed(6);
        let a = run_suite(cfg, &o, &regions()).unwrap();
        let b = run_suite(cfg, &o, &regions()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn suite_serialises() {
        let o = split_outcomes(500, 7);
        let cfg = AuditConfig::new(0.05).with_worlds(49).with_seed(8);
        let suite = run_suite(cfg, &o, &regions()).unwrap();
        let json = suite.to_json();
        let back: SuiteReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, suite);
        // Display renders without panicking and mentions the verdict.
        let s = suite.to_string();
        assert!(s.contains("Audit suite"));
    }

    #[test]
    fn degenerate_data_errors_cleanly() {
        let o = SpatialOutcomes::new(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
            vec![true, true],
        )
        .unwrap();
        let cfg = AuditConfig::new(0.05).with_worlds(49).with_seed(9);
        assert!(run_suite(cfg, &o, &regions()).is_err());
    }
}
