//! Figure 4 kernel: the Crime pipeline (generation, forest training,
//! prediction, equal-opportunity audit) at reduced scale.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfdata::crime::{CrimeConfig, CrimeData};
use sfml::RandomForestConfig;
use sfscan::{AuditConfig, Auditor, RegionSet};

fn bench(c: &mut Criterion) {
    let cfg = CrimeConfig {
        incidents: 10_000,
        ..CrimeConfig::small()
    };
    let data = CrimeData::generate(&cfg);
    let mut rf = RandomForestConfig::new(5, 9);
    rf.tree.max_depth = 8;

    let mut g = c.benchmark_group("fig4_crime");
    g.sample_size(10);
    g.bench_function("generate_10k_incidents", |b| {
        b.iter(|| black_box(CrimeData::generate(black_box(&cfg))))
    });
    g.bench_function("pipeline_train_predict_10k", |b| {
        b.iter(|| black_box(data.run_pipeline(black_box(&rf))))
    });

    let pipeline = data.run_pipeline(&rf);
    let regions = RegionSet::regular_grid(pipeline.outcomes.expanded_bounding_box(), 20, 20);
    let audit_cfg = AuditConfig::new(0.01).with_worlds(99).with_seed(10);
    g.bench_function("equal_opportunity_audit_20x20", |b| {
        b.iter(|| {
            black_box(
                Auditor::new(audit_cfg)
                    .audit(black_box(&pipeline.outcomes), black_box(&regions))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
