//! Figure 1 kernel: MeanVar and the audit over random regular
//! partitionings on Synth (reduced scale; full scale in
//! `experiments fig1`).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfbench::small_synth;
use sfgeo::{Partitioning, RandomPartitioningConfig};
use sfscan::{AuditConfig, Auditor, MeanVar, RegionSet};
use sfstats::rng::seeded_rng;

fn bench(c: &mut Criterion) {
    let synth = small_synth();
    let bounds = synth.expanded_bounding_box();
    let cfg = RandomPartitioningConfig {
        min_splits: 5,
        max_splits: 15,
    };
    let mut rng = seeded_rng(11);
    let partitionings: Vec<Partitioning> = (0..20)
        .map(|_| Partitioning::random_regular(bounds, &cfg, &mut rng))
        .collect();

    let mut g = c.benchmark_group("fig1");
    g.bench_function("meanvar_20_partitionings_1k_points", |b| {
        b.iter(|| {
            black_box(MeanVar::compute(
                black_box(&synth),
                black_box(&partitionings),
            ))
        })
    });

    let regions = RegionSet::from_partitionings(&partitionings);
    let audit_cfg = AuditConfig::new(0.05).with_worlds(99).with_seed(12);
    g.sample_size(10);
    g.bench_function("audit_99_worlds_1k_points", |b| {
        b.iter(|| {
            black_box(
                Auditor::new(audit_cfg)
                    .audit(black_box(&synth), black_box(&regions))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
