//! Ablation: Monte Carlo design choices (DESIGN.md §4).
//!
//! * Null model: Bernoulli label redraw (the paper's §3 choice) vs
//!   permutation conditioning on `P` (Kulldorff's choice).
//! * Counting strategy: membership-list replay vs per-world re-query.
//! * Budget strategy: full budget vs batched early stopping (the
//!   printed `worlds evaluated` lines quantify the saving — fewer
//!   worlds on clearly-unfair *and* clearly-fair inputs, identical
//!   verdicts).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use sfbench::small_lar;
use sfgeo::Point;
use sfscan::engine::ScanEngine;
use sfscan::outcomes::SpatialOutcomes;
use sfscan::{AuditConfig, Auditor, CountingStrategy, Direction, McStrategy, NullModel, RegionSet};
use sfstats::rng::world_rng;

fn bench(c: &mut Criterion) {
    let lar = small_lar();
    let regions = RegionSet::regular_grid(lar.outcomes.expanded_bounding_box(), 40, 20);
    let mem_engine =
        ScanEngine::build(&lar.outcomes, &regions, CountingStrategy::Membership).unwrap();
    let req_engine = ScanEngine::build(&lar.outcomes, &regions, CountingStrategy::Requery).unwrap();

    let mut g = c.benchmark_group("world_generation_10k_points");
    g.bench_function("bernoulli", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = world_rng(1, i);
            black_box(mem_engine.generate_world(NullModel::Bernoulli, &mut rng))
        })
    });
    g.bench_function("permutation", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = world_rng(1, i);
            black_box(mem_engine.generate_world(NullModel::Permutation, &mut rng))
        })
    });
    g.finish();

    let mut rng = world_rng(2, 0);
    let labels = mem_engine.generate_world(NullModel::Bernoulli, &mut rng);

    let mut g = c.benchmark_group("world_eval_800_regions_10k_points");
    g.bench_function("membership_replay", |b| {
        b.iter(|| black_box(mem_engine.eval_world(black_box(&labels), Direction::TwoSided)))
    });
    g.bench_function("requery", |b| {
        b.iter(|| black_box(req_engine.eval_world(black_box(&labels), Direction::TwoSided)))
    });
    g.finish();

    // Budget strategies on a clearly-unfair input (LAR) and a
    // clearly-fair one: early stopping must evaluate fewer worlds in
    // both regimes while returning the same verdict.
    let fair = {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let n = 10_000;
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let labs: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        SpatialOutcomes::new(points, labs).expect("valid outcomes")
    };
    let fair_regions = RegionSet::regular_grid(fair.expanded_bounding_box(), 20, 10);
    let unfair_regions = RegionSet::regular_grid(lar.outcomes.expanded_bounding_box(), 20, 10);

    let mut g = c.benchmark_group("mc_budget_strategies_199_worlds");
    g.sample_size(10);
    for (label, outcomes, regions) in [
        ("unfair_lar", &lar.outcomes, &unfair_regions),
        ("fair_uniform", &fair, &fair_regions),
    ] {
        for (strat_label, strategy) in [
            ("full_budget", McStrategy::FullBudget),
            ("early_stop", McStrategy::early_stop()),
        ] {
            let cfg = AuditConfig::new(0.05)
                .with_worlds(199)
                .with_seed(9)
                .with_mc_strategy(strategy);
            let report = Auditor::new(cfg)
                .audit(outcomes, regions)
                .expect("auditable");
            println!(
                "mc_budget_strategies/{label}/{strat_label}: verdict {}, {} of {} worlds evaluated",
                report.verdict(),
                report.worlds_evaluated,
                cfg.worlds
            );
            g.bench_with_input(BenchmarkId::new(label, strat_label), &cfg, |b, cfg| {
                b.iter(|| {
                    Auditor::new(*cfg)
                        .audit(black_box(outcomes), black_box(regions))
                        .expect("auditable")
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
