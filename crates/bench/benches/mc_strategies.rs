//! Ablation: Monte Carlo design choices (DESIGN.md §4).
//!
//! * Null model: Bernoulli label redraw (the paper's §3 choice) vs
//!   permutation conditioning on `P` (Kulldorff's choice).
//! * Counting strategy: membership-list replay vs per-world re-query.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfbench::small_lar;
use sfscan::engine::ScanEngine;
use sfscan::{CountingStrategy, Direction, NullModel, RegionSet};
use sfstats::rng::world_rng;

fn bench(c: &mut Criterion) {
    let lar = small_lar();
    let regions = RegionSet::regular_grid(lar.outcomes.expanded_bounding_box(), 40, 20);
    let mem_engine = ScanEngine::build(&lar.outcomes, &regions, CountingStrategy::Membership);
    let req_engine = ScanEngine::build(&lar.outcomes, &regions, CountingStrategy::Requery);

    let mut g = c.benchmark_group("world_generation_10k_points");
    g.bench_function("bernoulli", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = world_rng(1, i);
            black_box(mem_engine.generate_world(NullModel::Bernoulli, &mut rng))
        })
    });
    g.bench_function("permutation", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = world_rng(1, i);
            black_box(mem_engine.generate_world(NullModel::Permutation, &mut rng))
        })
    });
    g.finish();

    let mut rng = world_rng(2, 0);
    let labels = mem_engine.generate_world(NullModel::Bernoulli, &mut rng);

    let mut g = c.benchmark_group("world_eval_800_regions_10k_points");
    g.bench_function("membership_replay", |b| {
        b.iter(|| black_box(mem_engine.eval_world(black_box(&labels), Direction::TwoSided)))
    });
    g.bench_function("requery", |b| {
        b.iter(|| black_box(req_engine.eval_world(black_box(&labels), Direction::TwoSided)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
