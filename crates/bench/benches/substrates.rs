//! Substrate performance: k-means, random forest, summed-area tables,
//! membership construction.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfbench::{clustered_points, small_lar};
use sfcluster::{KMeans, KMeansConfig};
use sfdata::crime::{CrimeConfig, CrimeData};
use sfgeo::UniformGrid;
use sfindex::{IndexBackend, KdTree, Membership, Substrate, SummedAreaTable};
use sfml::RandomForestConfig;
use sfscan::RegionSet;

fn bench(c: &mut Criterion) {
    let lar = small_lar();

    let mut g = c.benchmark_group("substrates");
    g.sample_size(10);

    g.bench_function("kmeans_k50_on_2500_locations", |b| {
        b.iter(|| {
            black_box(KMeans::fit(
                black_box(&lar.locations),
                &KMeansConfig::new(50, 21),
            ))
        })
    });

    let crime = CrimeData::generate(&CrimeConfig {
        incidents: 8_000,
        ..CrimeConfig::small()
    });
    let mut rf = RandomForestConfig::new(5, 22);
    rf.tree.max_depth = 8;
    g.bench_function("random_forest_5_trees_8k_rows", |b| {
        b.iter(|| black_box(sfml::RandomForest::fit(black_box(&crime.features), &rf)))
    });

    let (points, labels) = clustered_points(50_000, 40, 23);
    let grid = UniformGrid::new(
        sfgeo::BoundingBox::of_points_expanded(&points, 1e-9).unwrap(),
        100,
        50,
    );
    g.bench_function("summed_area_table_build_50k_points_100x50", |b| {
        b.iter(|| {
            black_box(SummedAreaTable::build(
                black_box(&points),
                black_box(&labels),
                grid.clone(),
            ))
        })
    });

    let alias = sfstats::alias::AliasTable::new(&(1..=400).map(|i| i as f64).collect::<Vec<_>>());
    g.bench_function("alias_multinomial_100k_draws_400_cells", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut rng = sfstats::rng::world_rng(24, i);
            black_box(alias.sample_counts(100_000, &mut rng))
        })
    });

    let kd = KdTree::build(points.clone(), labels.clone());
    let regions = RegionSet::regular_grid(grid.bounds(), 40, 20);
    g.bench_function("membership_build_800_regions_50k_points", |b| {
        b.iter(|| {
            black_box(Membership::build(
                black_box(&kd),
                points.len(),
                black_box(regions.regions()),
            ))
        })
    });

    // Runtime-selected substrate construction: the build-cost side of
    // the backend choice (query costs live in `index_backends`).
    for backend in IndexBackend::ALL {
        g.bench_function(
            format!("substrate_build_50k_points/{}", backend.name()),
            |b| {
                b.iter(|| {
                    black_box(Substrate::build(
                        backend,
                        black_box(points.clone()),
                        black_box(labels.clone()),
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
