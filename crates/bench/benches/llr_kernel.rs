//! Throughput of the Bernoulli scan LLR kernel — the innermost loop of
//! every audit (`num_regions × num_worlds` evaluations per run).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sfstats::llr::{bernoulli_llr, bernoulli_llr_directed, Counts2x2};
use sfstats::Direction;

fn bench(c: &mut Criterion) {
    // A realistic batch of region counts.
    let counts: Vec<Counts2x2> = (0..4096u64)
        .map(|i| {
            let n_in = 1 + (i * 37) % 5000;
            let p_in = (n_in * ((i * 13) % 100)) / 100;
            Counts2x2::new(n_in, p_in, 206_418, 127_286)
        })
        .collect();

    let mut g = c.benchmark_group("llr_kernel");
    g.throughput(Throughput::Elements(counts.len() as u64));
    g.bench_function("two_sided_batch_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cc in &counts {
                acc += bernoulli_llr(black_box(cc));
            }
            black_box(acc)
        })
    });
    g.bench_function("directed_high_batch_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cc in &counts {
                acc += bernoulli_llr_directed(black_box(cc), Direction::High);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
