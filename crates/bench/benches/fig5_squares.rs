//! Figure 5 kernel: the §4.3 unrestricted square scan (reduced scale:
//! 30 k-means centers × 20 sides on the small LAR).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfbench::small_lar;
use sfcluster::{KMeans, KMeansConfig};
use sfscan::identify::select_non_overlapping;
use sfscan::{AuditConfig, Auditor, RegionSet};

fn bench(c: &mut Criterion) {
    let lar = small_lar();
    let mut g = c.benchmark_group("fig5_squares");
    g.sample_size(10);

    g.bench_function("kmeans_30_centers_2500_locations", |b| {
        b.iter(|| {
            black_box(KMeans::fit(
                black_box(&lar.locations),
                &KMeansConfig::new(30, 13),
            ))
        })
    });

    let km = KMeans::fit(&lar.locations, &KMeansConfig::new(30, 13));
    let regions = RegionSet::squares(km.centers, &RegionSet::paper_side_lengths());
    let audit_cfg = AuditConfig::new(0.01).with_worlds(99).with_seed(14);
    g.bench_function("square_scan_600_regions_99_worlds", |b| {
        b.iter(|| {
            black_box(
                Auditor::new(audit_cfg)
                    .audit(black_box(&lar.outcomes), black_box(&regions))
                    .unwrap(),
            )
        })
    });

    let report = Auditor::new(audit_cfg)
        .audit(&lar.outcomes, &regions)
        .unwrap();
    g.bench_function("non_overlapping_selection", |b| {
        b.iter(|| black_box(select_non_overlapping(black_box(&report.findings))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
