//! Ablation: the `Q` factor of the paper's `O(M·N·Q)` cost model.
//!
//! Compares every range-count backend on clustered (LAR-like) data
//! with the §4.3 mix of square queries.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sfbench::{clustered_points, small_lar};
use sfgeo::{Point, Rect, Region};
use sfindex::{
    BruteForceIndex, GridIndex, IndexBackend, KdTree, QuadTree, RTree, RangeCount, Substrate,
};
use sfscan::{AuditConfig, Auditor, CountingStrategy, RegionSet};
use sfstats::rng::seeded_rng;

use rand::Rng;

fn queries(n: usize, seed: u64) -> Vec<Region> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|_| {
            let c = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            Region::Rect(Rect::square(c, rng.gen_range(0.2..4.0)))
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let (points, labels) = clustered_points(50_000, 40, 3);
    let qs = queries(200, 4);

    let brute = BruteForceIndex::build(points.clone(), labels.clone());
    let kd = KdTree::build(points.clone(), labels.clone());
    let quad = QuadTree::build(points.clone(), labels.clone());
    let grid = GridIndex::build_auto(points.clone(), labels.clone(), 16);
    let rtree = RTree::build(points.clone(), labels.clone());

    let mut g = c.benchmark_group("range_count_50k_points_200_queries");
    let run = |b: &mut criterion::Bencher, index: &dyn RangeCount| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in &qs {
                acc += index.count(black_box(q)).n;
            }
            black_box(acc)
        })
    };
    g.bench_with_input(BenchmarkId::new("backend", "brute"), &(), |b, _| {
        run(b, &brute)
    });
    g.bench_with_input(BenchmarkId::new("backend", "kdtree"), &(), |b, _| {
        run(b, &kd)
    });
    g.bench_with_input(BenchmarkId::new("backend", "quadtree"), &(), |b, _| {
        run(b, &quad)
    });
    g.bench_with_input(BenchmarkId::new("backend", "grid"), &(), |b, _| {
        run(b, &grid)
    });
    g.bench_with_input(BenchmarkId::new("backend", "rtree"), &(), |b, _| {
        run(b, &rtree)
    });
    g.finish();

    let mut g = c.benchmark_group("index_build_50k_points");
    g.sample_size(10);
    g.bench_function("kdtree", |b| {
        b.iter(|| KdTree::build(black_box(points.clone()), black_box(labels.clone())))
    });
    g.bench_function("quadtree", |b| {
        b.iter(|| QuadTree::build(black_box(points.clone()), black_box(labels.clone())))
    });
    g.bench_function("grid", |b| {
        b.iter(|| GridIndex::build_auto(black_box(points.clone()), black_box(labels.clone()), 16))
    });
    g.bench_function("rtree", |b| {
        b.iter(|| RTree::build(black_box(points.clone()), black_box(labels.clone())))
    });
    g.finish();

    // Runtime-selected substrate, same queries: the dispatch overhead
    // over the direct structures above is the price of pluggability.
    let mut g = c.benchmark_group("substrate_range_count_50k_points_200_queries");
    for backend in IndexBackend::ALL {
        let substrate = Substrate::build(backend, points.clone(), labels.clone());
        g.bench_with_input(
            BenchmarkId::new("substrate", backend.name()),
            &(),
            |b, _| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for q in &qs {
                        acc += substrate.count(black_box(q)).n;
                    }
                    black_box(acc)
                })
            },
        );
    }
    g.finish();

    // End-to-end audits through each backend with per-world requery,
    // where the Q factor dominates the whole pipeline.
    let lar = small_lar();
    let regions = RegionSet::regular_grid(lar.outcomes.expanded_bounding_box(), 20, 10);
    let mut g = c.benchmark_group("audit_requery_10k_points_200_regions");
    g.sample_size(10);
    for backend in IndexBackend::ALL {
        let cfg = AuditConfig::new(0.05)
            .with_worlds(19)
            .with_seed(5)
            .with_backend(backend)
            .with_strategy(CountingStrategy::Requery);
        g.bench_with_input(BenchmarkId::new("audit", backend.name()), &cfg, |b, cfg| {
            b.iter(|| {
                Auditor::new(*cfg)
                    .audit(black_box(&lar.outcomes), black_box(&regions))
                    .expect("auditable")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
