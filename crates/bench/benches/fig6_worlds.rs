//! Figure 6 kernel: fair-world generation and the pure-negative
//! cluster search of Appendix A.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfdata::worlds::{largest_pure_negative_cluster, FairWorlds};

fn bench(c: &mut Criterion) {
    let fw = FairWorlds::uniform(1_000, 0.5, 15);
    let world = fw.world(0);

    let mut g = c.benchmark_group("fig6_worlds");
    g.bench_function("generate_world_1k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(fw.world(i))
        })
    });
    g.sample_size(10);
    g.bench_function("pure_cluster_search_1k", |b| {
        b.iter(|| black_box(largest_pure_negative_cluster(black_box(&world))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
