//! Figures 11/12 kernel: one-sided ("red"/"green") square scans
//! (Appendix B.2) at reduced scale.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sfbench::small_lar;
use sfcluster::{KMeans, KMeansConfig};
use sfscan::{AuditConfig, Auditor, Direction, RegionSet};

fn bench(c: &mut Criterion) {
    let lar = small_lar();
    let km = KMeans::fit(&lar.locations, &KMeansConfig::new(30, 17));
    let regions = RegionSet::squares(km.centers, &RegionSet::paper_side_lengths());

    let mut g = c.benchmark_group("fig11_fig12_onesided");
    g.sample_size(10);
    for (name, direction) in [
        ("two_sided", Direction::TwoSided),
        ("low_red", Direction::Low),
        ("high_green", Direction::High),
    ] {
        let cfg = AuditConfig::new(0.01)
            .with_worlds(99)
            .with_seed(18)
            .with_direction(direction);
        g.bench_with_input(BenchmarkId::new("direction", name), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(
                    Auditor::new(*cfg)
                        .audit(black_box(&lar.outcomes), black_box(&regions))
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
