//! Blocked world counting vs the scalar membership gather.
//!
//! The Monte Carlo hot path is `p(R)` recounting per world. This group
//! compares, on one workload, the three ways to run it:
//!
//! * `membership_scalar` — [`Membership::count_all_into`]: one bitset
//!   read per member id (the pre-blocked hot path).
//! * `blocked_flat` — [`BlockedMembership`] compiled in dataset id
//!   order: masked popcounts, but scattered ids keep masks sparse.
//! * `blocked_morton` — the production configuration: masks compiled
//!   under the Morton id layout, so compact regions own dense runs
//!   and each popcnt covers up to 64 ids.
//!
//! All three are asserted bit-identical before timing. The
//! `serve-bench` experiments subcommand measures the same comparison
//! inside the full serving workload and persists `BENCH_PR3.json`.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfbench::clustered_points;
use sfgeo::BoundingBox;
use sfindex::{morton_layout, BitLabels, BlockedMembership, KdTree, Membership};
use sfscan::RegionSet;

fn bench(c: &mut Criterion) {
    let (points, labels) = clustered_points(50_000, 40, 23);
    let n = points.len();
    let bounds = BoundingBox::of_points_expanded(&points, 1e-9).unwrap();
    let regions = RegionSet::regular_grid(bounds, 40, 20);
    let kd = KdTree::build(points.clone(), labels);
    let membership = Membership::build(&kd, n, regions.regions());
    let flat = BlockedMembership::compile(&membership).expect("membership lists are valid");
    let morton = BlockedMembership::compile_with_layout(&membership, morton_layout(&points))
        .expect("morton layout is a permutation");

    // One simulated world, in both storage layouts.
    let bools: Vec<bool> = (0..n)
        .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 5 < 2)
        .collect();
    let world = BitLabels::from_bools(&bools);
    let morton_world = morton.layout_labels(&bools);

    // Bit-identity before timing anything.
    let mut scalar_counts = Vec::new();
    let mut flat_counts = Vec::new();
    let mut morton_counts = Vec::new();
    let mut scratch = Vec::new();
    membership.count_all_into(&world, &mut scalar_counts);
    flat.count_all_into(&world, &mut flat_counts);
    morton.count_all_into(&morton_world, &mut morton_counts);
    assert_eq!(scalar_counts, flat_counts);
    assert_eq!(scalar_counts, morton_counts);

    let mut g = c.benchmark_group("blocked_counting_800_regions_50k_points");
    g.bench_function("membership_scalar", |b| {
        b.iter(|| {
            membership.count_all_into(black_box(&world), &mut scratch);
            black_box(scratch.last().copied())
        })
    });
    g.bench_function("blocked_flat", |b| {
        b.iter(|| {
            flat.count_all_into(black_box(&world), &mut scratch);
            black_box(scratch.last().copied())
        })
    });
    g.bench_function("blocked_morton", |b| {
        b.iter(|| {
            morton.count_all_into(black_box(&morton_world), &mut scratch);
            black_box(scratch.last().copied())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
