//! World *generation* in isolation: scalar per-point draws vs the
//! word-parallel v2 generator, across null models and storage layouts.
//!
//! PR 3 made world counting a masked-popcount sweep, which moved the
//! cold-path bottleneck to label generation. This group isolates that
//! pass on one workload:
//!
//! * `scalar_*` — [`WorldGen::Scalar`]: one `gen_bool` / Fisher–Yates
//!   draw per point (the v1 stream).
//! * `word_*` — [`WorldGen::Word`]: Bernoulli labels 64 per
//!   threshold-refinement pass, written as whole words (dense side of
//!   permutations likewise whole-word initialised).
//! * `*_identity` — a membership-strategy engine (identity layout:
//!   word draws scatter set lanes back to ids).
//! * `*_morton` — a blocked engine (Morton layout: word draws land
//!   directly in the layout-space label blocks — the serve fast path).
//!
//! The `serve-bench` experiments subcommand measures the same
//! comparison inside the full serving workload and persists
//! `BENCH_PR5.json`.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfdata::synth::SynthConfig;
use sfscan::engine::ScanEngine;
use sfscan::{CountingStrategy, NullModel, RegionSet, WorldGen};
use sfstats::rng::world_rng;

fn bench(c: &mut Criterion) {
    let outcomes = SynthConfig {
        per_half: 10_000,
        ..SynthConfig::paper()
    }
    .generate(29);
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 16, 16);
    let identity =
        ScanEngine::build(&outcomes, &regions, CountingStrategy::Membership).expect("auditable");
    let morton =
        ScanEngine::build(&outcomes, &regions, CountingStrategy::Blocked).expect("auditable");

    // Word worlds must agree across layouts before timing anything
    // (same physical labels, different bit positions).
    for w in 0..8u64 {
        for null_model in [NullModel::Bernoulli, NullModel::Permutation] {
            let mut rng = world_rng(3, w);
            let a = identity.generate_world_with(null_model, WorldGen::Word, &mut rng);
            let mut rng = world_rng(3, w);
            let b = morton.generate_world_with(null_model, WorldGen::Word, &mut rng);
            assert_eq!(a.count_ones(), b.count_ones());
            assert_eq!(
                identity.eval_world(&a, sfscan::Direction::TwoSided),
                morton.eval_world(&b, sfscan::Direction::TwoSided),
                "{null_model:?} world {w}"
            );
        }
    }

    let mut g = c.benchmark_group("world_gen_20k_points");
    let cases: [(&str, &ScanEngine, NullModel, WorldGen); 8] = [
        (
            "scalar_bernoulli_identity",
            &identity,
            NullModel::Bernoulli,
            WorldGen::Scalar,
        ),
        (
            "word_bernoulli_identity",
            &identity,
            NullModel::Bernoulli,
            WorldGen::Word,
        ),
        (
            "scalar_bernoulli_morton",
            &morton,
            NullModel::Bernoulli,
            WorldGen::Scalar,
        ),
        (
            "word_bernoulli_morton",
            &morton,
            NullModel::Bernoulli,
            WorldGen::Word,
        ),
        (
            "scalar_permutation_identity",
            &identity,
            NullModel::Permutation,
            WorldGen::Scalar,
        ),
        (
            "word_permutation_identity",
            &identity,
            NullModel::Permutation,
            WorldGen::Word,
        ),
        (
            "scalar_permutation_morton",
            &morton,
            NullModel::Permutation,
            WorldGen::Scalar,
        ),
        (
            "word_permutation_morton",
            &morton,
            NullModel::Permutation,
            WorldGen::Word,
        ),
    ];
    for (name, engine, null_model, worldgen) in cases {
        g.bench_function(name, |b| {
            let mut world = 0u64;
            b.iter(|| {
                world = world.wrapping_add(1);
                let mut rng = world_rng(11, world);
                let labels = engine.generate_world_with(null_model, worldgen, &mut rng);
                black_box(labels.count_ones())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
