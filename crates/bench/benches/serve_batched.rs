//! Serving-layer throughput: batched multi-audit execution over one
//! shared engine vs rebuilding the engine per request.
//!
//! The `serve-bench` experiments subcommand measures the same
//! comparison at full scale and persists `BENCH_PR2.json`; this group
//! tracks it under criterion's statistics at a reduced scale.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfdata::synth::SynthConfig;
use sfscan::prepared::{AuditRequest, PreparedAudit};
use sfscan::{AuditConfig, Auditor, Direction, McStrategy, RegionSet, WorldCache};

fn request_mix(base: &AuditConfig, count: usize) -> Vec<AuditRequest> {
    let directions = [Direction::TwoSided, Direction::High, Direction::Low];
    (0..count)
        .map(|i| {
            let mut request = AuditRequest::from_config(base)
                .with_direction(directions[i % directions.len()])
                .with_seed(base.seed + (i / 12) as u64);
            if i % 8 == 7 {
                request = request.with_mc_strategy(McStrategy::early_stop());
            }
            request
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let outcomes = SynthConfig {
        per_half: 2_000,
        ..SynthConfig::paper()
    }
    .generate(11);
    let regions = RegionSet::regular_grid(outcomes.expanded_bounding_box(), 8, 8);
    let base = AuditConfig::new(0.05).with_worlds(99).with_seed(3);
    let requests = request_mix(&base, 16);

    // Sanity: both paths agree bit for bit (the proptests pin this
    // exhaustively; the bench asserts it on its own workload).
    let prepared = PreparedAudit::prepare(&outcomes, &regions, base).expect("auditable");
    let batched = prepared.run_batch(&requests);
    for (request, report) in requests.iter().zip(&batched) {
        let solo = Auditor::new(request.apply_to(base))
            .audit(&outcomes, &regions)
            .expect("auditable");
        assert_eq!(*report, solo);
    }

    let mut g = c.benchmark_group("serve_16_requests_4k_points");
    g.sample_size(10);
    g.bench_function("rebuild_per_request", |b| {
        b.iter(|| {
            requests
                .iter()
                .map(|request| {
                    Auditor::new(request.apply_to(base))
                        .audit(black_box(&outcomes), black_box(&regions))
                        .expect("auditable")
                })
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("batched_shared_engine", |b| {
        b.iter(|| {
            let prepared = PreparedAudit::prepare(black_box(&outcomes), black_box(&regions), base)
                .expect("auditable");
            prepared.run_batch(black_box(&requests))
        })
    });
    // Serving amortizes preparation entirely when the engine is
    // long-lived; measure the steady-state drain cost too.
    g.bench_function("batched_prepared_once", |b| {
        b.iter(|| prepared.run_batch(black_box(&requests)))
    });
    // The cross-batch cache hit: one cold batch warms the cache, then
    // every iteration replays its τ-streams — zero simulated worlds.
    let mut warm_cache = WorldCache::new();
    let (warm_reports, _) = prepared.run_batch_cached(&requests, &mut warm_cache);
    assert_eq!(warm_reports, batched, "cached path stays bit-identical");
    g.bench_function("batched_warm_cache", |b| {
        b.iter(|| {
            let (reports, stats) = prepared.run_batch_cached(black_box(&requests), &mut warm_cache);
            assert_eq!(stats.unique_worlds, 0, "warm drains simulate nothing");
            reports
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
