//! Figure 9 kernel: the low-resolution 25×12 grid audit (Appendix
//! B.1) at reduced scale.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfbench::small_lar;
use sfscan::{AuditConfig, Auditor, RegionSet};

fn bench(c: &mut Criterion) {
    let lar = small_lar();
    let regions = RegionSet::regular_grid(lar.outcomes.expanded_bounding_box(), 25, 12);
    let audit_cfg = AuditConfig::new(0.01).with_worlds(99).with_seed(16);

    let mut g = c.benchmark_group("fig9_lowres");
    g.sample_size(10);
    g.bench_function("grid_audit_25x12_99_worlds_10k_points", |b| {
        b.iter(|| {
            black_box(
                Auditor::new(audit_cfg)
                    .audit(black_box(&lar.outcomes), black_box(&regions))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
