//! The §3 cost model `O(M · N · Q)`: audit runtime scaling in the
//! number of Monte Carlo worlds (M) and scanned regions (N).

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sfbench::small_lar;
use sfscan::{AuditConfig, Auditor, RegionSet};

fn bench(c: &mut Criterion) {
    let lar = small_lar();
    let bounds = lar.outcomes.expanded_bounding_box();

    // Sweep M with N fixed.
    let regions = RegionSet::regular_grid(bounds, 20, 10);
    let mut g = c.benchmark_group("complexity_sweep_worlds");
    g.sample_size(10);
    for worlds in [49usize, 99, 199] {
        let cfg = AuditConfig::new(0.05).with_worlds(worlds).with_seed(19);
        g.bench_with_input(BenchmarkId::from_parameter(worlds), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(
                    Auditor::new(*cfg)
                        .audit(black_box(&lar.outcomes), black_box(&regions))
                        .unwrap(),
                )
            })
        });
    }
    g.finish();

    // Sweep N with M fixed.
    let mut g = c.benchmark_group("complexity_sweep_regions");
    g.sample_size(10);
    for (nx, ny) in [(10usize, 5usize), (20, 10), (40, 20)] {
        let regions = RegionSet::regular_grid(bounds, nx, ny);
        let cfg = AuditConfig::new(0.05).with_worlds(99).with_seed(20);
        g.bench_with_input(
            BenchmarkId::from_parameter(regions.len()),
            &regions,
            |b, regions| {
                b.iter(|| {
                    black_box(
                        Auditor::new(cfg)
                            .audit(black_box(&lar.outcomes), black_box(regions))
                            .unwrap(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
