//! Figures 2/3 kernel: the 100×50-style grid audit of LAR (reduced
//! scale) plus the MeanVar contribution ranking.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfbench::small_lar;
use sfgeo::Partitioning;
use sfscan::{AuditConfig, Auditor, MeanVar, RegionSet};

fn bench(c: &mut Criterion) {
    let lar = small_lar();
    let bounds = lar.outcomes.expanded_bounding_box();
    let regions = RegionSet::regular_grid(bounds, 50, 25);
    let audit_cfg = AuditConfig::new(0.01).with_worlds(99).with_seed(5);

    let mut g = c.benchmark_group("fig2_fig3");
    g.sample_size(10);
    g.bench_function("grid_audit_50x25_99_worlds_10k_points", |b| {
        b.iter(|| {
            black_box(
                Auditor::new(audit_cfg)
                    .audit(black_box(&lar.outcomes), black_box(&regions))
                    .unwrap(),
            )
        })
    });

    let partitioning = Partitioning::regular(bounds, 50, 25);
    g.bench_function("meanvar_contributions_50x25", |b| {
        b.iter(|| {
            black_box(MeanVar::contributions(
                black_box(&lar.outcomes),
                black_box(&partitioning),
            ))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
