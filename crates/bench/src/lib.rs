//! Shared fixtures for the criterion benches.
//!
//! Every bench works on reduced-scale versions of the paper's
//! workloads so `cargo bench --workspace` completes in minutes while
//! preserving the shape of each experiment (the full-scale runs live
//! in the `experiments` harness).

use sfdata::lar::{LarConfig, LarDataset};
use sfdata::synth::SynthConfig;
use sfgeo::Point;
use sfindex::BitLabels;
use sfscan::outcomes::SpatialOutcomes;
use sfstats::rng::seeded_rng;

use rand::Rng;

/// Deterministic reduced-scale SynthLAR (10k observations).
pub fn small_lar() -> LarDataset {
    LarDataset::generate(&LarConfig::small())
}

/// Deterministic reduced-scale Synth (1k observations).
pub fn small_synth() -> SpatialOutcomes {
    SynthConfig::small().generate(7)
}

/// Uniform random points with Bernoulli labels, for index benches.
pub fn random_points(n: usize, rho: f64, seed: u64) -> (Vec<Point>, BitLabels) {
    let mut rng = seeded_rng(seed);
    let points: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
        .collect();
    let labels = BitLabels::from_fn(n, |_| rng.gen_bool(rho));
    (points, labels)
}

/// Clustered points (mixture of tight blobs), for index benches that
/// should resemble LAR's density profile.
pub fn clustered_points(n: usize, clusters: usize, seed: u64) -> (Vec<Point>, BitLabels) {
    let mut rng = seeded_rng(seed);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
        .collect();
    let points: Vec<Point> = (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..centers.len())];
            Point::new(
                c.x + rng.gen_range(-0.5..0.5),
                c.y + rng.gen_range(-0.5..0.5),
            )
        })
        .collect();
    let labels = BitLabels::from_fn(n, |_| rng.gen_bool(0.62));
    (points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(small_synth(), small_synth());
        let (p1, l1) = random_points(100, 0.5, 1);
        let (p2, l2) = random_points(100, 0.5, 1);
        assert_eq!(p1, p2);
        assert_eq!(l1, l2);
        let (c1, _) = clustered_points(100, 5, 2);
        let (c2, _) = clustered_points(100, 5, 2);
        assert_eq!(c1, c2);
    }
}
