//! A redlining scenario generator (the paper's §1 motivation).
//!
//! "This could be to avoid redlining, i.e., indirectly discriminating
//! based on ethnicity/race due to strong correlations between the home
//! address and certain ethnic/racial groups."
//!
//! The generator builds a city where a protected group concentrates in
//! certain districts and a lending policy applies a penalty to those
//! *districts* (not to the group attribute directly — the paper's
//! "fairness by unawareness is not sufficient" point). Creditworthiness
//! is group-independent, so any observed spatial disparity in approvals
//! is pure policy, not applicant quality — the situation a
//! statistical-parity audit by location must expose.

use rand::Rng;
use sfgeo::{Point, Rect};
use sfscan::outcomes::SpatialOutcomes;
use sfstats::rng::seeded_rng;

/// Scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedliningConfig {
    /// Number of loan applications.
    pub applications: usize,
    /// Number of city districts per axis (the city is a
    /// `districts × districts` block grid on the unit square).
    pub districts: usize,
    /// Fraction of districts that are redlined.
    pub redlined_fraction: f64,
    /// Approval-odds penalty applied inside redlined districts
    /// (subtracted from the logistic score).
    pub penalty: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RedliningConfig {
    fn default() -> Self {
        RedliningConfig {
            applications: 20_000,
            districts: 6,
            redlined_fraction: 0.25,
            penalty: 1.0,
            seed: 1937,
        }
    }
}

/// A generated redlining scenario.
#[derive(Debug, Clone)]
pub struct RedliningScenario {
    /// The audit view: application locations and approve/deny outcomes.
    pub outcomes: SpatialOutcomes,
    /// Whether each applicant belongs to the protected group (never
    /// seen by the "policy"; provided so callers can verify the
    /// indirect-discrimination mechanism).
    pub protected: Vec<bool>,
    /// The redlined district rectangles (ground truth for evaluation).
    pub redlined_districts: Vec<Rect>,
}

impl RedliningScenario {
    /// Generates the scenario.
    pub fn generate(config: &RedliningConfig) -> RedliningScenario {
        assert!(config.applications > 0, "need applications");
        assert!(config.districts >= 2, "need at least a 2x2 city");
        assert!(
            (0.0..1.0).contains(&config.redlined_fraction),
            "fraction in [0,1)"
        );
        let mut rng = seeded_rng(config.seed);
        let d = config.districts;
        let num_districts = d * d;
        let num_redlined = ((num_districts as f64) * config.redlined_fraction)
            .round()
            .max(1.0) as usize;
        // Choose redlined districts deterministically via the rng.
        let mut district_ids: Vec<usize> = (0..num_districts).collect();
        for i in 0..num_redlined {
            let j = rng.gen_range(i..num_districts);
            district_ids.swap(i, j);
        }
        let redlined: Vec<bool> = {
            let mut v = vec![false; num_districts];
            for &id in &district_ids[..num_redlined] {
                v[id] = true;
            }
            v
        };
        let district_rect = |id: usize| -> Rect {
            let (ix, iy) = (id % d, id / d);
            let w = 1.0 / d as f64;
            Rect::from_coords(
                ix as f64 * w,
                iy as f64 * w,
                (ix + 1) as f64 * w,
                (iy + 1) as f64 * w,
            )
        };

        let mut points = Vec::with_capacity(config.applications);
        let mut labels = Vec::with_capacity(config.applications);
        let mut protected = Vec::with_capacity(config.applications);
        for _ in 0..config.applications {
            // Residential sorting: protected-group members live in
            // redlined districts with high probability (the correlation
            // that makes location a proxy attribute).
            let is_protected = rng.gen_bool(0.3);
            let district = loop {
                let cand = rng.gen_range(0..num_districts);
                let p_live = if redlined[cand] == is_protected {
                    0.8
                } else {
                    0.2
                };
                if rng.gen_bool(p_live) {
                    break cand;
                }
            };
            let r = district_rect(district);
            let pt = Point::new(
                rng.gen_range(r.min.x..r.max.x),
                rng.gen_range(r.min.y..r.max.y),
            );
            // Creditworthiness is group-independent.
            let credit: f64 = rng.gen_range(-1.0..1.5);
            // The policy: logistic on credit, with a district penalty.
            let score = credit
                - if redlined[district] {
                    config.penalty
                } else {
                    0.0
                };
            let approve = rng.gen_bool(1.0 / (1.0 + (-score).exp()));
            points.push(pt);
            labels.push(approve);
            protected.push(is_protected);
        }
        let redlined_districts = (0..num_districts)
            .filter(|&id| redlined[id])
            .map(district_rect)
            .collect();
        RedliningScenario {
            outcomes: SpatialOutcomes::new(points, labels).expect("valid scenario"),
            protected,
            redlined_districts,
        }
    }

    /// Approval rates (protected group, rest) — the group disparity the
    /// spatial audit surfaces *without ever seeing the group attribute*.
    pub fn group_rates(&self) -> (f64, f64) {
        let mut prot = (0u64, 0u64);
        let mut rest = (0u64, 0u64);
        for (&is_prot, &approved) in self.protected.iter().zip(self.outcomes.labels()) {
            let slot = if is_prot { &mut prot } else { &mut rest };
            slot.0 += 1;
            slot.1 += approved as u64;
        }
        (prot.1 as f64 / prot.0 as f64, rest.1 as f64 / rest.0 as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> RedliningScenario {
        RedliningScenario::generate(&RedliningConfig {
            applications: 10_000,
            ..Default::default()
        })
    }

    #[test]
    fn redlined_districts_have_lower_approval() {
        let s = scenario();
        let mut inside = (0u64, 0u64);
        let mut outside = (0u64, 0u64);
        for (pt, &approved) in s.outcomes.points().iter().zip(s.outcomes.labels()) {
            let in_red = s.redlined_districts.iter().any(|r| r.contains(pt));
            let slot = if in_red { &mut inside } else { &mut outside };
            slot.0 += 1;
            slot.1 += approved as u64;
        }
        let rate_in = inside.1 as f64 / inside.0 as f64;
        let rate_out = outside.1 as f64 / outside.0 as f64;
        assert!(
            rate_in < rate_out - 0.1,
            "penalty must show: {rate_in} vs {rate_out}"
        );
    }

    #[test]
    fn protected_group_is_indirectly_harmed() {
        let s = scenario();
        let (prot, rest) = s.group_rates();
        assert!(
            prot < rest - 0.05,
            "group disparity emerges without the policy seeing the attribute: {prot} vs {rest}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = scenario();
        let b = scenario();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.protected, b.protected);
    }

    #[test]
    fn district_geometry_tiles_the_city() {
        let s = scenario();
        for r in &s.redlined_districts {
            assert!(r.min.x >= 0.0 && r.max.x <= 1.0);
            assert!(r.min.y >= 0.0 && r.max.y <= 1.0);
        }
        // 25% of 36 districts = 9.
        assert_eq!(s.redlined_districts.len(), 9);
    }
}
