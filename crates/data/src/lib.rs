//! Dataset substrate: generators calibrated to the paper's evaluation.
//!
//! The paper evaluates on two real datasets (HMDA mortgage records and
//! LA crime incidents) that cannot be redistributed or downloaded in
//! this environment, plus two synthetic ones it fully specifies. Per
//! the substitution policy (DESIGN.md §3) this crate provides:
//!
//! * [`synth`] — **Synth** (Figure 1b), reproduced *exactly* as
//!   specified: 10,000 uniform locations, two halves of 5,000, the
//!   left with twice the positives of the right.
//! * [`semisynth`] — **SemiSynth** (Figure 1a), reproduced as
//!   specified: 10,000 Florida locations, labels Bernoulli(0.5) —
//!   spatially fair by design.
//! * [`lar`] — **SynthLAR**, a synthetic clone of the 2021 Bank of
//!   America modified-LAR dataset: 206,418 observations over ~50k
//!   locations clustered around real US metro coordinates, with local
//!   positive rates calibrated to every statistic the paper reports
//!   (N. California ≈ 0.84, San Jose ≈ 0.83, Miami ≈ 0.45, sparse
//!   Iowa, overall ρ ≈ 0.62).
//! * [`crime`] — **SynthCrime**, a synthetic clone of the LA crime
//!   pipeline: 7-feature incidents in the LA bounding box, a
//!   ground-truth seriousness process, concept drift inside a
//!   "Hollywood" region (so a location-blind model has spatially
//!   varying accuracy), and the full train→predict→audit pipeline on
//!   our own random forest.
//! * [`worlds`] — the Appendix A fair-world generator (Figure 6) and
//!   the pure-negative-cluster search it illustrates.
//! * [`redlining`] — a scenario generator for the paper's §1 redlining
//!   motivation: a location-proxy policy that indirectly harms a
//!   protected group (extension).
//! * [`csv`] — plain-text persistence for generated datasets.
//! * [`metro`] — the named metro calibration table.

//! # Example
//!
//! ```rust
//! use sfdata::synth::SynthConfig;
//!
//! // The paper's Figure 1(b) construction, exactly:
//! let synth = SynthConfig::paper().generate(42);
//! assert_eq!(synth.len(), 10_000);
//! assert_eq!(synth.positives(), 5_000);
//! ```

pub mod crime;
pub mod csv;
pub mod lar;
pub mod metro;
pub mod redlining;
pub mod semisynth;
pub mod synth;
pub mod worlds;

pub use crime::{CrimeConfig, CrimeData, CrimePipelineResult};
pub use lar::{LarConfig, LarDataset};
pub use redlining::{RedliningConfig, RedliningScenario};
pub use semisynth::SemiSynthConfig;
pub use synth::SynthConfig;
