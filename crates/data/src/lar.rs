//! SynthLAR: the synthetic clone of the paper's LAR dataset.
//!
//! The real dataset (HMDA modified LAR, Bank of America, 2021)
//! contains 206,418 mortgage applications — 127,286 granted (positive
//! rate 0.62) — distributed over 50,647 census-tract centroid
//! locations across the US. The generator reproduces the properties
//! the paper's experiments depend on (DESIGN.md §3):
//!
//! * strongly non-regular, metro-clustered spatial density;
//! * a dense Northern California block with ≈84% approvals (the
//!   paper's most-unfair region, Figures 2b and 12);
//! * a dense Miami block with ≈44% approvals (Figure 11's most-unfair
//!   "red" region);
//! * a tiny dense high-rate Tampa core and a broad Orlando cluster
//!   (the §4.3 size-diversity observation, Figure 5);
//! * sparse rural coverage (Iowa et al.) producing the all-negative
//!   micro-cells that fool `MeanVar` (Figure 2a).

use crate::metro::{self, Metro, FLORIDA_BBOX, METROS, RURAL_RATE, RURAL_WEIGHT, US_BBOX};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rand_distr_normal::sample_normal;
use sfgeo::Point;
use sfscan::outcomes::SpatialOutcomes;
use sfstats::rng::seeded_rng;

/// Box–Muller standard-normal sampling (kept local: `rand` 0.8's
/// `Standard` does not ship a normal distribution without `rand_distr`).
mod rand_distr_normal {
    use rand::Rng;

    pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LarConfig {
    /// Number of applications (observations). Paper: 206,418.
    pub observations: usize,
    /// Number of distinct locations. Paper: 50,647.
    pub locations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LarConfig {
    /// The paper-scale configuration.
    pub fn paper() -> Self {
        LarConfig {
            observations: 206_418,
            locations: 50_647,
            seed: 2021,
        }
    }

    /// A small configuration for tests and examples (same structure,
    /// ~20x fewer observations).
    pub fn small() -> Self {
        LarConfig {
            observations: 10_000,
            locations: 2_500,
            seed: 2021,
        }
    }
}

impl Default for LarConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A generated SynthLAR dataset.
#[derive(Debug, Clone)]
pub struct LarDataset {
    /// The audit view: application locations and approve/deny outcomes.
    pub outcomes: SpatialOutcomes,
    /// Per-observation metro index into [`METROS`], or `None` for the
    /// rural background. Used by the experiment harness to narrate
    /// findings ("a region in Northern California").
    pub metro_of: Vec<Option<u16>>,
    /// The distinct locations the observations were drawn from.
    pub locations: Vec<Point>,
}

impl LarDataset {
    /// Generates a dataset.
    pub fn generate(config: &LarConfig) -> LarDataset {
        assert!(
            config.observations > 0 && config.locations > 0,
            "config must be positive"
        );
        let mut rng = seeded_rng(config.seed);
        let total_w = metro::total_weight();

        // --- 1. Locations per metro (plus rural background). ---
        let mut locations: Vec<Point> = Vec::with_capacity(config.locations);
        let mut loc_metro: Vec<Option<u16>> = Vec::with_capacity(config.locations);
        for (mi, m) in METROS.iter().enumerate() {
            let share = m.weight / total_w;
            let n_loc = ((config.locations as f64) * share).round().max(1.0) as usize;
            for _ in 0..n_loc {
                locations.push(sample_metro_location(m, &mut rng));
                loc_metro.push(Some(mi as u16));
            }
        }
        // Rural remainder.
        let (lon0, lat0, lon1, lat1) = US_BBOX;
        while locations.len() < config.locations {
            locations.push(Point::new(
                rng.gen_range(lon0..lon1),
                rng.gen_range(lat0..lat1),
            ));
            loc_metro.push(None);
        }

        // Per-metro location index ranges for fast sampling.
        let mut metro_loc_ranges: Vec<(usize, usize)> = Vec::with_capacity(METROS.len());
        {
            let mut start = 0usize;
            for mi in 0..METROS.len() {
                let mut end = start;
                while end < loc_metro.len() && loc_metro[end] == Some(mi as u16) {
                    end += 1;
                }
                metro_loc_ranges.push((start, end));
                start = end;
            }
        }
        let rural_start = metro_loc_ranges.last().map_or(0, |&(_, e)| e);

        // --- 2. Observations: choose a metro by weight, a location ---
        // within it, and an outcome at the metro's rate.
        let mut points = Vec::with_capacity(config.observations);
        let mut labels = Vec::with_capacity(config.observations);
        let mut metro_of = Vec::with_capacity(config.observations);
        // Cumulative weights: metros then rural.
        let mut cum: Vec<f64> = Vec::with_capacity(METROS.len() + 1);
        let mut acc = 0.0;
        for m in METROS {
            acc += m.weight / total_w;
            cum.push(acc);
        }
        acc += RURAL_WEIGHT / total_w;
        cum.push(acc);
        for _ in 0..config.observations {
            let u: f64 = rng.gen_range(0.0..cum[cum.len() - 1]);
            let pick = cum.partition_point(|&c| c <= u);
            if pick < METROS.len() {
                let (s, e) = metro_loc_ranges[pick];
                let loc = if s < e {
                    locations[rng.gen_range(s..e)]
                } else {
                    sample_metro_location(&METROS[pick], &mut rng)
                };
                points.push(loc);
                labels.push(rng.gen_bool(METROS[pick].rate));
                metro_of.push(Some(pick as u16));
            } else {
                // Rural observation at a rural location.
                let loc = if rural_start < locations.len() {
                    locations[rng.gen_range(rural_start..locations.len())]
                } else {
                    Point::new(rng.gen_range(lon0..lon1), rng.gen_range(lat0..lat1))
                };
                points.push(loc);
                labels.push(rng.gen_bool(RURAL_RATE));
                metro_of.push(None);
            }
        }

        let outcomes =
            SpatialOutcomes::new(points, labels).expect("generated data is non-empty and finite");
        LarDataset {
            outcomes,
            metro_of,
            locations,
        }
    }

    /// The distinct locations that fall inside Florida — the pool the
    /// SemiSynth construction samples from.
    pub fn florida_locations(&self) -> Vec<Point> {
        let (lon0, lat0, lon1, lat1) = FLORIDA_BBOX;
        self.locations
            .iter()
            .filter(|p| p.x > lon0 && p.x < lon1 && p.y > lat0 && p.y < lat1)
            .copied()
            .collect()
    }

    /// Name of the metro an observation belongs to (`"rural"` for the
    /// background).
    pub fn metro_name(&self, observation: usize) -> &'static str {
        match self.metro_of[observation] {
            Some(mi) => METROS[mi as usize].name,
            None => "rural",
        }
    }

    /// The metro table entry nearest to a point (for narrating region
    /// findings), together with its distance in degrees.
    pub fn nearest_metro(p: &Point) -> (&'static Metro, f64) {
        let mut best = &METROS[0];
        let mut best_d = f64::INFINITY;
        for m in METROS {
            let d = Point::new(m.lon, m.lat).distance(p);
            if d < best_d {
                best = m;
                best_d = d;
            }
        }
        (best, best_d)
    }
}

fn sample_metro_location(m: &Metro, rng: &mut ChaCha8Rng) -> Point {
    Point::new(
        m.lon + sample_normal(rng) * m.spread,
        m.lat + sample_normal(rng) * m.spread * 0.8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LarDataset {
        LarDataset::generate(&LarConfig::small())
    }

    #[test]
    fn sizes_match_config() {
        let d = small();
        assert_eq!(d.outcomes.len(), 10_000);
        assert_eq!(d.metro_of.len(), 10_000);
        assert!(d.locations.len() >= 2_500);
    }

    #[test]
    fn global_rate_is_near_062() {
        let d = small();
        let rho = d.outcomes.rate();
        assert!((rho - 0.62).abs() < 0.03, "rate {rho}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = LarDataset::generate(&LarConfig::small());
        let b = LarDataset::generate(&LarConfig::small());
        assert_eq!(a.outcomes, b.outcomes);
        let c = LarDataset::generate(&LarConfig {
            seed: 99,
            ..LarConfig::small()
        });
        assert_ne!(a.outcomes, c.outcomes);
    }

    #[test]
    fn northern_california_is_high_rate() {
        let d = small();
        // Observations within 1 degree of San Jose.
        let sj = Point::new(-121.89, 37.34);
        let mut n = 0u64;
        let mut p = 0u64;
        for (pt, &l) in d.outcomes.points().iter().zip(d.outcomes.labels()) {
            if pt.distance(&sj) < 1.0 {
                n += 1;
                p += l as u64;
            }
        }
        assert!(n > 200, "expected a dense San Jose cluster, got {n}");
        let rate = p as f64 / n as f64;
        assert!((rate - 0.835).abs() < 0.05, "NorCal rate {rate}");
    }

    #[test]
    fn miami_is_low_rate() {
        let d = small();
        let miami = Point::new(-80.19, 25.76);
        let mut n = 0u64;
        let mut p = 0u64;
        for (pt, &l) in d.outcomes.points().iter().zip(d.outcomes.labels()) {
            if pt.distance(&miami) < 0.7 {
                n += 1;
                p += l as u64;
            }
        }
        assert!(n > 100, "expected a dense Miami cluster, got {n}");
        let rate = p as f64 / n as f64;
        assert!(rate < 0.55, "Miami rate {rate}");
    }

    #[test]
    fn florida_locations_are_in_florida() {
        let d = small();
        let fl = d.florida_locations();
        assert!(fl.len() > 50, "Florida pool too small: {}", fl.len());
        let (lon0, lat0, lon1, lat1) = FLORIDA_BBOX;
        for p in &fl {
            assert!(p.x > lon0 && p.x < lon1 && p.y > lat0 && p.y < lat1);
        }
    }

    #[test]
    fn metro_names_resolve() {
        let d = small();
        let name = d.metro_name(0);
        assert!(!name.is_empty());
        let (m, dist) = LarDataset::nearest_metro(&Point::new(-122.4, 37.75));
        assert_eq!(m.name, "San Francisco, CA");
        assert!(dist < 0.1);
    }

    #[test]
    fn observations_reuse_locations() {
        // ~4 applications per location on average: the number of
        // distinct points must be far below the number of observations.
        let d = small();
        let mut distinct: Vec<(u64, u64)> = d
            .outcomes
            .points()
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() < d.outcomes.len() * 3 / 4,
            "{} distinct locations for {} observations",
            distinct.len(),
            d.outcomes.len()
        );
    }
}
