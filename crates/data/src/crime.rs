//! SynthCrime: the synthetic clone of the paper's Crime experiment.
//!
//! The paper (§4.1) trains a random forest on 7 features of LA crime
//! incidents (time, police precinct, victim age/sex/descent, premise
//! type, weapon) to predict whether an incident is *serious*, then
//! audits the model's **equal opportunity** (true-positive rate) by
//! location. Location is *not* a model feature, yet the model's
//! accuracy varies spatially — the audit finds a Hollywood region
//! whose TPR (0.51) trails the global 0.58.
//!
//! The generator reproduces the mechanism: incidents cluster around
//! precinct centers in the LA bounding box; seriousness follows a
//! feature-driven logistic process; and inside a "Hollywood" region a
//! fraction of labels is flipped at random (concept drift). Label
//! noise is unlearnable from the features, so any location-blind
//! model has a depressed TPR exactly there — which is what the audit
//! must find.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use sfgeo::{Point, Rect};
use sfml::{ConfusionMatrix, FeatureKind, RandomForest, RandomForestConfig, TabularData};
use sfscan::outcomes::SpatialOutcomes;
use sfscan::Statistic;
use sfstats::rng::{derive_seed, seeded_rng};

/// LA bounding box (lon_min, lat_min, lon_max, lat_max).
pub const LA_BBOX: (f64, f64, f64, f64) = (-118.67, 33.70, -118.15, 34.34);

/// The synthetic "Hollywood" drift region.
///
/// Covers two of the synthetic precinct centers (the lattice row at
/// lat ≈ 34.02), so roughly 7–9% of incidents fall inside — enough
/// mass for the equal-opportunity audit to resolve the TPR gap, as in
/// the paper's Figure 4 ("almost 3,000 outcomes" in the Hollywood
/// partition).
pub fn hollywood_region() -> Rect {
    Rect::from_coords(-118.45, 33.94, -118.30, 34.10)
}

/// Number of synthetic police precincts (LAPD has 21 community areas).
pub const NUM_PRECINCTS: usize = 21;

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrimeConfig {
    /// Number of incidents to generate. The paper uses 711,852; the
    /// default is a faster 150,000 with identical structure.
    pub incidents: usize,
    /// Fraction of labels flipped inside the drift region.
    pub drift_flip: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CrimeConfig {
    /// Paper-scale configuration (711,852 incidents).
    pub fn paper() -> Self {
        CrimeConfig {
            incidents: 711_852,
            drift_flip: 0.25,
            seed: 63,
        }
    }

    /// Default reduced scale.
    pub fn medium() -> Self {
        CrimeConfig {
            incidents: 150_000,
            drift_flip: 0.25,
            seed: 63,
        }
    }

    /// Small scale for tests.
    pub fn small() -> Self {
        CrimeConfig {
            incidents: 20_000,
            drift_flip: 0.25,
            seed: 63,
        }
    }
}

impl Default for CrimeConfig {
    fn default() -> Self {
        Self::medium()
    }
}

/// A generated incident dataset: tabular features (with ground-truth
/// seriousness labels) plus per-incident locations.
#[derive(Debug, Clone)]
pub struct CrimeData {
    /// The 7 features + labels, in the paper's feature order:
    /// hour, precinct, age, sex, descent, premise, weapon.
    pub features: TabularData,
    /// Incident locations (not a model feature).
    pub points: Vec<Point>,
}

/// Synthetic precinct centers: a deterministic 7×3 lattice over the LA
/// box (the exact geometry is irrelevant; only clustered density and
/// the precinct→location association matter).
pub fn precinct_centers() -> Vec<Point> {
    let (lon0, lat0, lon1, lat1) = LA_BBOX;
    let mut centers = Vec::with_capacity(NUM_PRECINCTS);
    for j in 0..3 {
        for i in 0..7 {
            centers.push(Point::new(
                lon0 + (lon1 - lon0) * (i as f64 + 0.5) / 7.0,
                lat0 + (lat1 - lat0) * (j as f64 + 0.5) / 3.0,
            ));
        }
    }
    centers.truncate(NUM_PRECINCTS);
    centers
}

impl CrimeData {
    /// Generates a dataset.
    pub fn generate(config: &CrimeConfig) -> CrimeData {
        assert!(config.incidents > 0, "need at least one incident");
        assert!(
            (0.0..=1.0).contains(&config.drift_flip),
            "drift_flip must be a probability"
        );
        let mut rng = seeded_rng(config.seed);
        let centers = precinct_centers();
        let hollywood = hollywood_region();
        let n = config.incidents;

        let mut hour = Vec::with_capacity(n);
        let mut precinct = Vec::with_capacity(n);
        let mut age = Vec::with_capacity(n);
        let mut sex = Vec::with_capacity(n);
        let mut descent = Vec::with_capacity(n);
        let mut premise = Vec::with_capacity(n);
        let mut weapon = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut points = Vec::with_capacity(n);

        for _ in 0..n {
            let pr = rng.gen_range(0..NUM_PRECINCTS);
            let c = centers[pr];
            let pt = Point::new(
                c.x + gaussian(&mut rng) * 0.035,
                c.y + gaussian(&mut rng) * 0.035,
            );
            let h = sample_hour(&mut rng);
            let a = (35.0 + gaussian(&mut rng) * 15.0).clamp(10.0, 90.0).round();
            let s = sample_weighted(&mut rng, &[0.48, 0.48, 0.04]);
            let d = sample_weighted(&mut rng, &[0.30, 0.25, 0.20, 0.12, 0.08, 0.05]);
            let pm = sample_weighted(
                &mut rng,
                &[0.25, 0.25, 0.12, 0.10, 0.05, 0.05, 0.05, 0.05, 0.04, 0.04],
            );
            let w = sample_weighted(&mut rng, &[0.45, 0.10, 0.10, 0.12, 0.12, 0.05, 0.06]);

            // Ground-truth seriousness: a logistic process over the
            // features (nothing spatial in it).
            let score = -1.70
                + WEAPON_EFFECT[w]
                + PREMISE_EFFECT[pm]
                + if !(5..=20).contains(&h) { 0.7 } else { 0.0 }
                - (a - 35.0) / 100.0;
            let p_serious = 1.0 / (1.0 + (-score as f64).exp());
            let mut y = rng.gen_bool(p_serious);
            // Concept drift: inside Hollywood a fraction of labels flips
            // at random — unlearnable from the features.
            if hollywood.contains(&pt) && rng.gen_bool(config.drift_flip) {
                y = !y;
            }

            hour.push(h as f64);
            precinct.push(pr as f64);
            age.push(a);
            sex.push(s as f64);
            descent.push(d as f64);
            premise.push(pm as f64);
            weapon.push(w as f64);
            labels.push(y);
            points.push(pt);
        }

        let mut features = TabularData::new();
        features.push_column("hour", FeatureKind::Numeric, hour);
        features.push_column("precinct", FeatureKind::Categorical, precinct);
        features.push_column("victim_age", FeatureKind::Numeric, age);
        features.push_column("victim_sex", FeatureKind::Categorical, sex);
        features.push_column("victim_descent", FeatureKind::Categorical, descent);
        features.push_column("premise", FeatureKind::Categorical, premise);
        features.push_column("weapon", FeatureKind::Categorical, weapon);
        features.set_labels(labels);

        CrimeData { features, points }
    }

    /// Runs the paper's pipeline: 70/30 train/test split, random-forest
    /// training, prediction on the test set, and construction of the
    /// equal-opportunity audit view ("we retain the predictions for the
    /// true positive labels").
    pub fn run_pipeline(&self, forest: &RandomForestConfig) -> CrimePipelineResult {
        let split_seed = derive_seed(forest.seed, "crime-split");
        let (train_idx, test_idx) = self.features.train_test_split_indices(0.3, split_seed);
        let train = self.features.select_rows(&train_idx);
        let test = self.features.select_rows(&test_idx);
        let model = RandomForest::fit(&train, forest);
        let y_pred = model.predict_batch(&test);
        let y_true: Vec<bool> = test.labels().to_vec();
        let test_points: Vec<Point> = test_idx.iter().map(|&i| self.points[i]).collect();
        let cm = ConfusionMatrix::from_slices(&y_true, &y_pred);
        let outcomes = SpatialOutcomes::from_predictions(
            &test_points,
            &y_true,
            &y_pred,
            Statistic::EqualOppTpr,
        )
        .expect("test set contains positive-class incidents");
        CrimePipelineResult {
            outcomes,
            test_points,
            y_true,
            y_pred,
            accuracy: cm.accuracy(),
            tpr: cm.tpr(),
            fpr: cm.fpr(),
            base_rate: self.features.positive_rate(),
        }
    }
}

/// Everything the Crime audit consumes.
#[derive(Debug, Clone)]
pub struct CrimePipelineResult {
    /// Equal-opportunity view of the test predictions: the locations of
    /// true-class incidents, labelled by whether the model got them
    /// right. The local rate of this view *is* the local TPR.
    pub outcomes: SpatialOutcomes,
    /// All test-set locations.
    pub test_points: Vec<Point>,
    /// Test ground truth.
    pub y_true: Vec<bool>,
    /// Test predictions.
    pub y_pred: Vec<bool>,
    /// Test accuracy (paper: 0.78).
    pub accuracy: f64,
    /// Test true-positive rate (paper: 0.58).
    pub tpr: f64,
    /// Test false-positive rate.
    pub fpr: f64,
    /// Ground-truth seriousness base rate (paper: ≈0.29).
    pub base_rate: f64,
}

const WEAPON_EFFECT: [f64; 7] = [-1.20, -0.60, 0.90, 1.80, 2.60, 1.00, 0.20];
const PREMISE_EFFECT: [f64; 10] = [0.60, 0.00, 0.30, 0.15, 0.60, 0.90, -0.30, -0.45, 0.45, 0.00];

fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Hour-of-day with a night-time bump.
fn sample_hour(rng: &mut ChaCha8Rng) -> usize {
    if rng.gen_bool(0.35) {
        // Night hours 21..=23, 0..=4.
        let pick = rng.gen_range(0..8);
        if pick < 3 {
            21 + pick
        } else {
            pick - 3
        }
    } else {
        rng.gen_range(0..24)
    }
}

fn sample_weighted(rng: &mut ChaCha8Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> CrimeData {
        CrimeData::generate(&CrimeConfig::small())
    }

    #[test]
    fn generation_shape() {
        let d = data();
        assert_eq!(d.features.num_rows(), 20_000);
        assert_eq!(d.features.num_features(), 7);
        assert_eq!(d.points.len(), 20_000);
        let (lon0, lat0, lon1, lat1) = LA_BBOX;
        // Nearly all incidents inside the LA box (gaussian tails may
        // leak slightly past the border precincts).
        let inside = d
            .points
            .iter()
            .filter(|p| {
                p.x > lon0 - 0.2 && p.x < lon1 + 0.2 && p.y > lat0 - 0.2 && p.y < lat1 + 0.2
            })
            .count();
        assert_eq!(inside, d.points.len());
    }

    #[test]
    fn base_rate_is_calibrated() {
        // The paper's Crime data has ≈29% serious incidents
        // (61,266 of 213,556 test rows).
        let d = data();
        let rate = d.features.positive_rate();
        assert!((0.24..=0.36).contains(&rate), "base rate {rate}");
    }

    #[test]
    fn features_have_expected_ranges() {
        let d = data();
        for r in 0..200 {
            let hour = d.features.value(0, r);
            assert!((0.0..24.0).contains(&hour));
            let precinct = d.features.value(1, r);
            assert!((0.0..NUM_PRECINCTS as f64).contains(&precinct));
            let age = d.features.value(2, r);
            assert!((10.0..=90.0).contains(&age));
            let weapon = d.features.value(6, r);
            assert!((0.0..7.0).contains(&weapon));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CrimeData::generate(&CrimeConfig::small());
        let b = CrimeData::generate(&CrimeConfig::small());
        assert_eq!(a.points, b.points);
        assert_eq!(a.features.labels(), b.features.labels());
    }

    #[test]
    fn drift_region_has_elevated_label_randomness() {
        // Inside Hollywood the flip raises the serious rate toward 0.5.
        let d = data();
        let hw = hollywood_region();
        let mut inside = (0u64, 0u64);
        let mut outside = (0u64, 0u64);
        for (pt, &y) in d.points.iter().zip(d.features.labels()) {
            if hw.contains(pt) {
                inside.0 += 1;
                inside.1 += y as u64;
            } else {
                outside.0 += 1;
                outside.1 += y as u64;
            }
        }
        assert!(inside.0 > 300, "drift region too sparse: {}", inside.0);
        let rate_in = inside.1 as f64 / inside.0 as f64;
        let rate_out = outside.1 as f64 / outside.0 as f64;
        assert!(
            rate_in > rate_out + 0.05,
            "drift should raise the local base rate: {rate_in} vs {rate_out}"
        );
    }

    #[test]
    fn pipeline_reaches_paper_quality() {
        let d = CrimeData::generate(&CrimeConfig {
            incidents: 60_000,
            ..CrimeConfig::small()
        });
        let mut rf = RandomForestConfig::new(10, 7);
        rf.tree.max_depth = 10;
        let r = d.run_pipeline(&rf);
        // Paper: accuracy 0.78, TPR 0.58. Loose bands — the shape is
        // what matters (docs record exact measured values).
        assert!(
            (0.70..=0.88).contains(&r.accuracy),
            "accuracy {}",
            r.accuracy
        );
        assert!((0.40..=0.75).contains(&r.tpr), "tpr {}", r.tpr);
        // The equal-opportunity view keeps only true-class incidents.
        assert_eq!(r.outcomes.len(), r.y_true.iter().filter(|&&y| y).count());
        // Its global rate is the TPR by construction.
        assert!((r.outcomes.rate() - r.tpr).abs() < 1e-12);
    }

    #[test]
    fn hollywood_tpr_is_depressed() {
        let d = CrimeData::generate(&CrimeConfig {
            incidents: 80_000,
            ..CrimeConfig::small()
        });
        let mut rf = RandomForestConfig::new(10, 7);
        rf.tree.max_depth = 10;
        let r = d.run_pipeline(&rf);
        let hw = hollywood_region();
        let mut inside = (0u64, 0u64);
        let mut outside = (0u64, 0u64);
        for (pt, &correct) in r.outcomes.points().iter().zip(r.outcomes.labels()) {
            if hw.contains(pt) {
                inside.0 += 1;
                inside.1 += correct as u64;
            } else {
                outside.0 += 1;
                outside.1 += correct as u64;
            }
        }
        assert!(
            inside.0 > 100,
            "need TPR mass in Hollywood, got {}",
            inside.0
        );
        let tpr_in = inside.1 as f64 / inside.0 as f64;
        let tpr_out = outside.1 as f64 / outside.0 as f64;
        assert!(
            tpr_in < tpr_out - 0.03,
            "Hollywood TPR {tpr_in} should trail the rest {tpr_out}"
        );
    }

    #[test]
    fn precinct_centers_cover_the_box() {
        let centers = precinct_centers();
        assert_eq!(centers.len(), NUM_PRECINCTS);
        let (lon0, lat0, lon1, lat1) = LA_BBOX;
        for c in centers {
            assert!(c.x > lon0 && c.x < lon1 && c.y > lat0 && c.y < lat1);
        }
    }
}
