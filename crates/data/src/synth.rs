//! Synth: the unfair-by-design dataset of Figure 1(b).
//!
//! "The synthetic dataset … contains 10,000 outcomes for locations
//! selected uniformly at random within a rectangular area. The area is
//! split into two halves, each containing 5,000 outcomes. However, the
//! left half has twice as many positive outcomes as the right half …
//! the positive rate in the left half is about 0.67, while in the
//! right half is 0.33."

use rand::seq::SliceRandom;
use rand::Rng;
use sfgeo::Rect;
use sfscan::outcomes::SpatialOutcomes;
use sfstats::rng::seeded_rng;

/// Generator parameters for Synth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Observations per half (paper: 5,000 for 10,000 total).
    pub per_half: usize,
    /// The rectangular area (the paper draws it arbitrarily; we use a
    /// 2×1 rectangle so halves are unit squares).
    pub bounds: Rect,
}

impl SynthConfig {
    /// The paper's configuration: 10,000 outcomes, 5,000 positives,
    /// left half with twice the positives of the right.
    pub fn paper() -> Self {
        SynthConfig {
            per_half: 5_000,
            bounds: Rect::from_coords(0.0, 0.0, 2.0, 1.0),
        }
    }

    /// A reduced configuration for examples and doctests.
    pub fn small() -> Self {
        SynthConfig {
            per_half: 500,
            bounds: Rect::from_coords(0.0, 0.0, 2.0, 1.0),
        }
    }

    /// Generates the dataset with exact counts: `per_half` points per
    /// half; positives split 2:1 between the halves with the total
    /// equal to `per_half` (e.g. 3,333 + 1,667 = 5,000).
    pub fn generate(&self, seed: u64) -> SpatialOutcomes {
        assert!(self.per_half >= 3, "need at least 3 observations per half");
        let mut rng = seeded_rng(seed);
        let total_pos = self.per_half; // overall rate 0.5, as in the paper
        let left_pos = (total_pos as f64 * 2.0 / 3.0).round() as usize;
        let right_pos = total_pos - left_pos;
        let mid_x = self.bounds.center().x;

        let mut points = Vec::with_capacity(self.per_half * 2);
        let mut labels = Vec::with_capacity(self.per_half * 2);

        // Left half: exact positive count, shuffled.
        let mut left_labels: Vec<bool> = (0..self.per_half).map(|i| i < left_pos).collect();
        left_labels.shuffle(&mut rng);
        for l in left_labels {
            points.push(sfgeo::Point::new(
                rng.gen_range(self.bounds.min.x..mid_x),
                rng.gen_range(self.bounds.min.y..self.bounds.max.y),
            ));
            labels.push(l);
        }
        // Right half.
        let mut right_labels: Vec<bool> = (0..self.per_half).map(|i| i < right_pos).collect();
        right_labels.shuffle(&mut rng);
        for l in right_labels {
            points.push(sfgeo::Point::new(
                rng.gen_range(mid_x..self.bounds.max.x),
                rng.gen_range(self.bounds.min.y..self.bounds.max.y),
            ));
            labels.push(l);
        }
        SpatialOutcomes::new(points, labels).expect("generated data is valid")
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_are_exact() {
        let o = SynthConfig::paper().generate(1);
        assert_eq!(o.len(), 10_000);
        assert_eq!(o.positives(), 5_000);
        // Per-half counts.
        let mid = 1.0;
        let mut left = (0u64, 0u64);
        let mut right = (0u64, 0u64);
        for (p, &l) in o.points().iter().zip(o.labels()) {
            if p.x < mid {
                left.0 += 1;
                left.1 += l as u64;
            } else {
                right.0 += 1;
                right.1 += l as u64;
            }
        }
        assert_eq!(left.0, 5_000);
        assert_eq!(right.0, 5_000);
        assert_eq!(left.1, 3_333);
        assert_eq!(right.1, 1_667);
        // Rates ≈ 0.67 / 0.33 as the paper states.
        assert!((left.1 as f64 / left.0 as f64 - 0.667).abs() < 0.01);
        assert!((right.1 as f64 / right.0 as f64 - 0.333).abs() < 0.01);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthConfig::paper().generate(7);
        let b = SynthConfig::paper().generate(7);
        assert_eq!(a, b);
        assert_ne!(a, SynthConfig::paper().generate(8));
    }

    #[test]
    fn locations_fill_the_bounds() {
        let cfg = SynthConfig::small();
        let o = cfg.generate(3);
        let bb = o.bounding_box();
        assert!(cfg.bounds.contains_rect(&bb));
        // Uniform draws should come close to the bounds on all sides.
        assert!(bb.width() > cfg.bounds.width() * 0.95);
        assert!(bb.height() > cfg.bounds.height() * 0.9);
    }

    #[test]
    fn small_config_scales_counts() {
        let o = SynthConfig::small().generate(5);
        assert_eq!(o.len(), 1_000);
        assert_eq!(o.positives(), 500);
    }
}
