//! Plain-text persistence for generated datasets.
//!
//! The paper publishes its datasets; we persist ours so audits can be
//! rerun on identical inputs. The format is a minimal headered CSV:
//! `x,y,label` with `label ∈ {0, 1}`.

use sfgeo::Point;
use sfscan::outcomes::SpatialOutcomes;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes outcomes as `x,y,label` CSV.
pub fn write_outcomes<W: Write>(out: W, outcomes: &SpatialOutcomes) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "x,y,label")?;
    for (p, &l) in outcomes.points().iter().zip(outcomes.labels()) {
        writeln!(w, "{},{},{}", p.x, p.y, l as u8)?;
    }
    w.flush()
}

/// Writes outcomes to a file path.
pub fn save_outcomes(path: &Path, outcomes: &SpatialOutcomes) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_outcomes(f, outcomes)
}

/// Reads outcomes from `x,y,label` CSV.
pub fn read_outcomes<R: BufRead>(input: R) -> io::Result<SpatialOutcomes> {
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with('x')) {
            continue;
        }
        let mut parts = line.split(',');
        let bad = || {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed CSV at line {}", lineno + 1),
            )
        };
        let x: f64 = parts
            .next()
            .ok_or_else(bad)?
            .trim()
            .parse()
            .map_err(|_| bad())?;
        let y: f64 = parts
            .next()
            .ok_or_else(bad)?
            .trim()
            .parse()
            .map_err(|_| bad())?;
        let l: u8 = parts
            .next()
            .ok_or_else(bad)?
            .trim()
            .parse()
            .map_err(|_| bad())?;
        if parts.next().is_some() || l > 1 {
            return Err(bad());
        }
        points.push(Point::new(x, y));
        labels.push(l == 1);
    }
    SpatialOutcomes::new(points, labels)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads outcomes from a file path.
pub fn load_outcomes(path: &Path) -> io::Result<SpatialOutcomes> {
    let f = std::fs::File::open(path)?;
    read_outcomes(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> SpatialOutcomes {
        SpatialOutcomes::new(
            vec![
                Point::new(1.5, -2.25),
                Point::new(0.1, 0.2),
                Point::new(3.0, 4.0),
            ],
            vec![true, false, true],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_through_memory() {
        let o = sample();
        let mut buf = Vec::new();
        write_outcomes(&mut buf, &o).unwrap();
        let back = read_outcomes(Cursor::new(buf)).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn roundtrip_through_file() {
        let o = sample();
        let dir = std::env::temp_dir();
        let path = dir.join("sfdata_csv_roundtrip_test.csv");
        save_outcomes(&path, &o).unwrap();
        let back = load_outcomes(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, o);
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let csv = "x,y,label\n\n1.0,2.0,1\n\n3.0,4.0,0\n";
        let o = read_outcomes(Cursor::new(csv)).unwrap();
        assert_eq!(o.len(), 2);
        assert_eq!(o.labels(), &[true, false]);
    }

    #[test]
    fn malformed_rows_error() {
        for bad in ["1.0,2.0", "a,b,c", "1.0,2.0,2", "1.0,2.0,1,extra"] {
            let res = read_outcomes(Cursor::new(format!("x,y,label\n{bad}\n")));
            assert!(res.is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn float_precision_survives() {
        let o = SpatialOutcomes::new(
            vec![Point::new(std::f64::consts::PI, -std::f64::consts::E)],
            vec![true],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_outcomes(&mut buf, &o).unwrap();
        let back = read_outcomes(Cursor::new(buf)).unwrap();
        assert_eq!(back.points()[0], o.points()[0]);
    }
}
