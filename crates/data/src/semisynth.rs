//! SemiSynth: the fair-by-design dataset of Figure 1(a).
//!
//! "The semi-synthetic dataset … contains 10,000 outcomes for
//! locations that are randomly selected in Florida from the LAR
//! dataset. The positive and negative are randomly assigned to each
//! location with a probability of 0.5. Hence, SemiSynth is spatially
//! fair by design."
//!
//! The key property is that the *locations are strongly non-regular*
//! (clustered around Florida metros) while the *labels are
//! location-independent*. This is exactly the combination on which the
//! `MeanVar` baseline mis-ranks fairness (Figure 1).

use crate::lar::LarDataset;
use rand::Rng;
use sfgeo::Point;
use sfscan::outcomes::SpatialOutcomes;
use sfstats::rng::seeded_rng;

/// Generator parameters for SemiSynth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemiSynthConfig {
    /// Number of outcomes (paper: 10,000).
    pub observations: usize,
    /// Fair coin's success probability (paper: 0.5).
    pub rate: f64,
}

impl SemiSynthConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        SemiSynthConfig {
            observations: 10_000,
            rate: 0.5,
        }
    }

    /// A reduced configuration for examples and doctests.
    pub fn small() -> Self {
        SemiSynthConfig {
            observations: 1_000,
            rate: 0.5,
        }
    }

    /// Generates SemiSynth by sampling locations (with replacement)
    /// from the given pool and assigning fair-coin labels.
    ///
    /// # Panics
    /// Panics if the pool is empty or the rate is not a probability.
    pub fn generate_from(&self, location_pool: &[Point], seed: u64) -> SpatialOutcomes {
        assert!(!location_pool.is_empty(), "location pool must be non-empty");
        assert!(
            (0.0..=1.0).contains(&self.rate),
            "rate must be a probability"
        );
        let mut rng = seeded_rng(seed);
        let mut points = Vec::with_capacity(self.observations);
        let mut labels = Vec::with_capacity(self.observations);
        for _ in 0..self.observations {
            points.push(location_pool[rng.gen_range(0..location_pool.len())]);
            labels.push(rng.gen_bool(self.rate));
        }
        SpatialOutcomes::new(points, labels).expect("generated data is valid")
    }

    /// Generates SemiSynth from a SynthLAR dataset's Florida locations
    /// (the paper's construction).
    pub fn generate_from_lar(&self, lar: &LarDataset, seed: u64) -> SpatialOutcomes {
        let pool = lar.florida_locations();
        self.generate_from(&pool, seed)
    }
}

impl Default for SemiSynthConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lar::LarConfig;
    use crate::metro::FLORIDA_BBOX;

    fn pool() -> Vec<Point> {
        let lar = LarDataset::generate(&LarConfig::small());
        lar.florida_locations()
    }

    #[test]
    fn counts_and_rate() {
        let o = SemiSynthConfig::paper().generate_from(&pool(), 1);
        assert_eq!(o.len(), 10_000);
        // Fair coin: rate near 0.5 (binomial 3-sigma ≈ 0.015).
        assert!((o.rate() - 0.5).abs() < 0.02, "rate {}", o.rate());
    }

    #[test]
    fn locations_come_from_the_pool() {
        let p = pool();
        let o = SemiSynthConfig::small().generate_from(&p, 2);
        let (lon0, lat0, lon1, lat1) = FLORIDA_BBOX;
        for pt in o.points() {
            assert!(pt.x > lon0 && pt.x < lon1 && pt.y > lat0 && pt.y < lat1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = pool();
        let a = SemiSynthConfig::small().generate_from(&p, 3);
        let b = SemiSynthConfig::small().generate_from(&p, 3);
        assert_eq!(a, b);
        assert_ne!(a, SemiSynthConfig::small().generate_from(&p, 4));
    }

    #[test]
    fn generate_from_lar_convenience() {
        let lar = LarDataset::generate(&LarConfig::small());
        let o = SemiSynthConfig::small().generate_from_lar(&lar, 5);
        assert_eq!(o.len(), 1_000);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pool_rejected() {
        let _ = SemiSynthConfig::small().generate_from(&[], 1);
    }
}
