//! Fair-world generation and the pure-cluster search (Appendix A,
//! Figure 6).
//!
//! The paper's Appendix A illustrates why extreme-but-sparse cells are
//! not evidence of unfairness: four alternate labelings of the *same*
//! 1,000 locations under a fair Bernoulli(0.5) process each contain an
//! easily-found cluster of ≥5 negatives with no positive among them.
//! This module generates those worlds and implements the cluster
//! search.

use rand::Rng;
use sfgeo::{Circle, Point};
use sfscan::outcomes::SpatialOutcomes;
use sfstats::rng::{seeded_rng, world_rng};

/// A fixed spatial distribution with resampleable fair labels.
#[derive(Debug, Clone)]
pub struct FairWorlds {
    locations: Vec<Point>,
    rate: f64,
    seed: u64,
}

impl FairWorlds {
    /// Creates the Figure 6 setting: `n` uniform locations in the unit
    /// square, fair coin labels.
    pub fn uniform(n: usize, rate: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one location");
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        let mut rng = seeded_rng(seed);
        let locations = (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        FairWorlds {
            locations,
            rate,
            seed,
        }
    }

    /// Creates fair worlds over an explicit location set.
    pub fn over(locations: Vec<Point>, rate: f64, seed: u64) -> Self {
        assert!(!locations.is_empty(), "need at least one location");
        FairWorlds {
            locations,
            rate,
            seed,
        }
    }

    /// The shared locations.
    pub fn locations(&self) -> &[Point] {
        &self.locations
    }

    /// The `i`-th alternate world: same locations, fresh fair labels.
    pub fn world(&self, i: u64) -> SpatialOutcomes {
        let mut rng = world_rng(self.seed, i);
        let labels = (0..self.locations.len())
            .map(|_| rng.gen_bool(self.rate))
            .collect();
        SpatialOutcomes::new(self.locations.clone(), labels).expect("worlds are valid")
    }
}

/// A pure negative cluster: a circle containing `count ≥ 1` negatives
/// and zero positives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PureCluster {
    /// Circle covering the cluster.
    pub circle: Circle,
    /// Number of (negative) observations inside.
    pub count: usize,
}

/// Finds the largest pure-negative cluster: for every negative point,
/// grow a disk through its nearest neighbours until the first positive
/// is reached; return the best (most negatives before a positive).
///
/// This is the (brute-force, `O(N² log N)`) search illustrated by the
/// blue circles of Figure 6; it is meant for the appendix-scale
/// datasets (`N ≈ 1,000`), not for audits.
pub fn largest_pure_negative_cluster(outcomes: &SpatialOutcomes) -> Option<PureCluster> {
    let pts = outcomes.points();
    let labels = outcomes.labels();
    let mut best: Option<PureCluster> = None;
    for (i, center) in pts.iter().enumerate() {
        if labels[i] {
            continue;
        }
        // Distances from this negative to every point.
        let mut dists: Vec<(f64, bool)> = pts
            .iter()
            .zip(labels)
            .map(|(p, &l)| (center.distance_sq(p), l))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let mut count = 0usize;
        let mut radius_sq: f64 = 0.0;
        for &(d, l) in &dists {
            if l {
                break;
            }
            count += 1;
            radius_sq = d;
        }
        if best.is_none_or(|b| count > b.count) {
            // Inflate the radius by one ulp-scale factor: squaring the
            // square root can otherwise drop the farthest member.
            let radius = radius_sq.sqrt() * (1.0 + 1e-12);
            best = Some(PureCluster {
                circle: Circle::new(*center, radius),
                count,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_share_locations_but_not_labels() {
        let fw = FairWorlds::uniform(1_000, 0.5, 6);
        let a = fw.world(0);
        let b = fw.world(1);
        assert_eq!(a.points(), b.points());
        assert_ne!(a.labels(), b.labels());
        // Fair coin: rates near 0.5.
        assert!((a.rate() - 0.5).abs() < 0.06);
        assert!((b.rate() - 0.5).abs() < 0.06);
    }

    #[test]
    fn worlds_are_deterministic() {
        let fw = FairWorlds::uniform(100, 0.5, 7);
        assert_eq!(fw.world(3), fw.world(3));
    }

    #[test]
    fn every_fair_world_contains_a_pure_cluster_of_five() {
        // The paper's Appendix A claim: in ALL examples "it is easy to
        // identify a region with at least five negative and no positive
        // outcomes".
        let fw = FairWorlds::uniform(1_000, 0.5, 8);
        for w in 0..4 {
            let world = fw.world(w);
            let cluster = largest_pure_negative_cluster(&world).expect("negatives exist");
            assert!(
                cluster.count >= 5,
                "world {w}: largest pure cluster has only {} negatives",
                cluster.count
            );
            // Verify the cluster is genuinely pure.
            let mut neg = 0;
            for (p, &l) in world.points().iter().zip(world.labels()) {
                if cluster.circle.contains(p) {
                    assert!(!l, "cluster contains a positive");
                    neg += 1;
                }
            }
            assert_eq!(neg, cluster.count);
        }
    }

    #[test]
    fn cluster_search_handles_all_positive_world() {
        let fw = FairWorlds::uniform(50, 1.0, 9);
        let world = fw.world(0);
        assert!(largest_pure_negative_cluster(&world).is_none());
    }

    #[test]
    fn cluster_search_on_explicit_locations() {
        // Three isolated negatives in a corner, positives elsewhere.
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.01, 0.0),
            Point::new(0.0, 0.01),
        ];
        let mut labels = vec![false, false, false];
        for i in 0..20 {
            pts.push(Point::new(1.0 + (i as f64) * 0.01, 1.0));
            labels.push(true);
        }
        let o = SpatialOutcomes::new(pts, labels).unwrap();
        let c = largest_pure_negative_cluster(&o).unwrap();
        assert_eq!(c.count, 3);
        assert!(c.circle.center.x < 0.1);
    }
}
