//! The metro calibration table behind `SynthLAR`.
//!
//! Each entry is a US metropolitan area with (approximate, public)
//! coordinates, a share of the national application volume, a local
//! approval rate, and a spatial spread. The rates are calibrated to
//! reproduce the regional structure the paper reports for the real
//! LAR data (see DESIGN.md §3): a high-approval Northern California
//! block, a low-approval Miami block, a small dense high-rate Tampa
//! core, sparse Iowa coverage, and an overall positive rate near 0.62.

/// One metro area in the calibration table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metro {
    /// Display name ("San Jose, CA").
    pub name: &'static str,
    /// Longitude of the metro center (degrees).
    pub lon: f64,
    /// Latitude of the metro center (degrees).
    pub lat: f64,
    /// Share of total application volume (relative; normalised at use).
    pub weight: f64,
    /// Local approval (positive) rate.
    pub rate: f64,
    /// Gaussian spread of locations around the center (degrees).
    pub spread: f64,
}

/// The calibration table. Weights are relative shares; the remainder
/// up to 1.0 (after normalisation against [`RURAL_WEIGHT`]) is rural
/// background spread uniformly over the continental US.
pub const METROS: &[Metro] = &[
    Metro {
        name: "New York, NY",
        lon: -74.00,
        lat: 40.71,
        weight: 0.080,
        rate: 0.580,
        spread: 0.25,
    },
    Metro {
        name: "Los Angeles, CA",
        lon: -118.24,
        lat: 34.05,
        weight: 0.070,
        rate: 0.550,
        spread: 0.28,
    },
    Metro {
        name: "Chicago, IL",
        lon: -87.63,
        lat: 41.88,
        weight: 0.050,
        rate: 0.550,
        spread: 0.22,
    },
    Metro {
        name: "Houston, TX",
        lon: -95.37,
        lat: 29.76,
        weight: 0.045,
        rate: 0.540,
        spread: 0.22,
    },
    Metro {
        name: "Phoenix, AZ",
        lon: -112.07,
        lat: 33.45,
        weight: 0.030,
        rate: 0.635,
        spread: 0.20,
    },
    Metro {
        name: "Philadelphia, PA",
        lon: -75.17,
        lat: 39.95,
        weight: 0.030,
        rate: 0.540,
        spread: 0.18,
    },
    Metro {
        name: "San Antonio, TX",
        lon: -98.49,
        lat: 29.42,
        weight: 0.020,
        rate: 0.550,
        spread: 0.18,
    },
    Metro {
        name: "San Diego, CA",
        lon: -117.16,
        lat: 32.72,
        weight: 0.030,
        rate: 0.660,
        spread: 0.18,
    },
    Metro {
        name: "Dallas, TX",
        lon: -96.80,
        lat: 32.78,
        weight: 0.045,
        rate: 0.550,
        spread: 0.22,
    },
    // --- the Northern California high-approval block (Figures 2b, 12) ---
    Metro {
        name: "San Jose, CA",
        lon: -121.89,
        lat: 37.34,
        weight: 0.060,
        rate: 0.83,
        spread: 0.18,
    },
    Metro {
        name: "San Francisco, CA",
        lon: -122.42,
        lat: 37.77,
        weight: 0.040,
        rate: 0.84,
        spread: 0.12,
    },
    Metro {
        name: "Oakland, CA",
        lon: -122.27,
        lat: 37.80,
        weight: 0.020,
        rate: 0.84,
        spread: 0.10,
    },
    Metro {
        name: "Sacramento, CA",
        lon: -121.49,
        lat: 38.58,
        weight: 0.028,
        rate: 0.84,
        spread: 0.16,
    },
    // --- the Florida structure (Figures 5, 11) ---
    Metro {
        name: "Miami, FL",
        lon: -80.19,
        lat: 25.76,
        weight: 0.030,
        rate: 0.44,
        spread: 0.16,
    },
    Metro {
        name: "Fort Lauderdale, FL",
        lon: -80.14,
        lat: 26.12,
        weight: 0.012,
        rate: 0.47,
        spread: 0.10,
    },
    Metro {
        name: "Orlando, FL",
        lon: -81.38,
        lat: 28.54,
        weight: 0.023,
        rate: 0.74,
        spread: 0.22,
    },
    Metro {
        name: "Tampa, FL",
        lon: -82.46,
        lat: 27.95,
        weight: 0.0035,
        rate: 0.82,
        spread: 0.04,
    },
    Metro {
        name: "Jacksonville, FL",
        lon: -81.66,
        lat: 30.33,
        weight: 0.012,
        rate: 0.650,
        spread: 0.14,
    },
    // --- the rest of the country ---
    Metro {
        name: "Atlanta, GA",
        lon: -84.39,
        lat: 33.75,
        weight: 0.040,
        rate: 0.645,
        spread: 0.22,
    },
    Metro {
        name: "Charlotte, NC",
        lon: -80.84,
        lat: 35.23,
        weight: 0.025,
        rate: 0.645,
        spread: 0.18,
    },
    Metro {
        name: "Seattle, WA",
        lon: -122.33,
        lat: 47.61,
        weight: 0.035,
        rate: 0.670,
        spread: 0.18,
    },
    Metro {
        name: "Portland, OR",
        lon: -122.68,
        lat: 45.52,
        weight: 0.020,
        rate: 0.660,
        spread: 0.16,
    },
    Metro {
        name: "Denver, CO",
        lon: -104.99,
        lat: 39.74,
        weight: 0.030,
        rate: 0.660,
        spread: 0.18,
    },
    Metro {
        name: "Boston, MA",
        lon: -71.06,
        lat: 42.36,
        weight: 0.030,
        rate: 0.670,
        spread: 0.16,
    },
    Metro {
        name: "Washington, DC",
        lon: -77.04,
        lat: 38.91,
        weight: 0.040,
        rate: 0.645,
        spread: 0.20,
    },
    Metro {
        name: "Detroit, MI",
        lon: -83.05,
        lat: 42.33,
        weight: 0.025,
        rate: 0.460,
        spread: 0.18,
    },
    Metro {
        name: "Minneapolis, MN",
        lon: -93.27,
        lat: 44.98,
        weight: 0.025,
        rate: 0.585,
        spread: 0.18,
    },
    Metro {
        name: "St. Louis, MO",
        lon: -90.20,
        lat: 38.63,
        weight: 0.020,
        rate: 0.550,
        spread: 0.16,
    },
    Metro {
        name: "Kansas City, MO",
        lon: -94.58,
        lat: 39.10,
        weight: 0.015,
        rate: 0.570,
        spread: 0.16,
    },
    // --- sparse Iowa (Figure 2a's suspicious-but-insignificant cells) ---
    Metro {
        name: "Des Moines, IA",
        lon: -93.62,
        lat: 41.59,
        weight: 0.004,
        rate: 0.60,
        spread: 0.50,
    },
    Metro {
        name: "Cedar Rapids, IA",
        lon: -91.67,
        lat: 41.98,
        weight: 0.002,
        rate: 0.58,
        spread: 0.40,
    },
    Metro {
        name: "Nashville, TN",
        lon: -86.78,
        lat: 36.16,
        weight: 0.020,
        rate: 0.650,
        spread: 0.18,
    },
    Metro {
        name: "Las Vegas, NV",
        lon: -115.14,
        lat: 36.17,
        weight: 0.020,
        rate: 0.540,
        spread: 0.14,
    },
    Metro {
        name: "Salt Lake City, UT",
        lon: -111.89,
        lat: 40.76,
        weight: 0.015,
        rate: 0.670,
        spread: 0.14,
    },
    Metro {
        name: "Austin, TX",
        lon: -97.74,
        lat: 30.27,
        weight: 0.025,
        rate: 0.670,
        spread: 0.16,
    },
    Metro {
        name: "New Orleans, LA",
        lon: -90.07,
        lat: 29.95,
        weight: 0.012,
        rate: 0.480,
        spread: 0.14,
    },
    Metro {
        name: "Pittsburgh, PA",
        lon: -79.99,
        lat: 40.44,
        weight: 0.018,
        rate: 0.59,
        spread: 0.16,
    },
    Metro {
        name: "Cleveland, OH",
        lon: -81.69,
        lat: 41.50,
        weight: 0.018,
        rate: 0.510,
        spread: 0.14,
    },
    Metro {
        name: "Columbus, OH",
        lon: -82.99,
        lat: 39.96,
        weight: 0.020,
        rate: 0.640,
        spread: 0.16,
    },
    Metro {
        name: "Baltimore, MD",
        lon: -76.61,
        lat: 39.29,
        weight: 0.018,
        rate: 0.520,
        spread: 0.14,
    },
];

/// Relative weight of the rural background (uniform over the
/// continental US at [`RURAL_RATE`]).
pub const RURAL_WEIGHT: f64 = 0.04;

/// Approval rate of the rural background.
pub const RURAL_RATE: f64 = 0.55;

/// Continental-US bounding box (lon_min, lat_min, lon_max, lat_max).
pub const US_BBOX: (f64, f64, f64, f64) = (-124.7, 25.1, -67.0, 49.4);

/// Florida bounding box, used by the SemiSynth construction
/// ("locations that are randomly selected in Florida").
pub const FLORIDA_BBOX: (f64, f64, f64, f64) = (-87.6, 24.5, -80.0, 31.0);

/// Sum of all metro weights plus the rural weight (the normaliser).
pub fn total_weight() -> f64 {
    METROS.iter().map(|m| m.weight).sum::<f64>() + RURAL_WEIGHT
}

/// The volume-weighted average positive rate of the table — the
/// expected global `ρ` of a generated SynthLAR dataset.
pub fn expected_global_rate() -> f64 {
    let metro: f64 = METROS.iter().map(|m| m.weight * m.rate).sum();
    (metro + RURAL_WEIGHT * RURAL_RATE) / total_weight()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_positive_and_rates_are_probabilities() {
        for m in METROS {
            assert!(m.weight > 0.0, "{}", m.name);
            assert!((0.0..=1.0).contains(&m.rate), "{}", m.name);
            assert!(m.spread > 0.0, "{}", m.name);
        }
    }

    #[test]
    fn coordinates_are_inside_the_us_bbox() {
        let (lon0, lat0, lon1, lat1) = US_BBOX;
        for m in METROS {
            assert!(m.lon > lon0 && m.lon < lon1, "{} lon {}", m.name, m.lon);
            assert!(m.lat > lat0 && m.lat < lat1, "{} lat {}", m.name, m.lat);
        }
    }

    #[test]
    fn expected_rate_matches_the_papers_global_rate() {
        // The paper's LAR has overall positive rate 0.62.
        let rho = expected_global_rate();
        assert!((rho - 0.62).abs() < 0.02, "expected global rate {rho}");
    }

    #[test]
    fn northern_california_block_is_calibrated_high() {
        for name in [
            "San Jose, CA",
            "San Francisco, CA",
            "Oakland, CA",
            "Sacramento, CA",
        ] {
            let m = METROS.iter().find(|m| m.name == name).unwrap();
            assert!(m.rate >= 0.83, "{name} rate {}", m.rate);
        }
    }

    #[test]
    fn miami_block_is_calibrated_low() {
        let miami = METROS.iter().find(|m| m.name == "Miami, FL").unwrap();
        // Paper Figure 11: the Miami region has 43% positives.
        assert!(miami.rate < 0.5);
    }

    #[test]
    fn florida_metros_are_inside_florida_bbox() {
        let (lon0, lat0, lon1, lat1) = FLORIDA_BBOX;
        for m in METROS.iter().filter(|m| m.name.ends_with("FL")) {
            assert!(m.lon > lon0 && m.lon < lon1, "{}", m.name);
            assert!(m.lat > lat0 && m.lat < lat1, "{}", m.name);
        }
    }
}
