//! The shard worker: a TCP process serving count-partial spans.
//!
//! A worker wraps one [`SpanCounter`] behind the same newline-delimited
//! JSON framing the `sfnet` audit server speaks: one request line in,
//! one reply line out, per connection, in order. Workers are
//! stateless between requests — any worker can serve any span of any
//! word window, which is what lets the coordinator re-dispatch a
//! failed shard's span to a different worker (or compute it locally)
//! and still reduce bit-identical partials.
//!
//! A [`FaultPlan`] injects deterministic failures for the robustness
//! tests: delays, dropped connections, corrupt replies, and full
//! worker death (stop accepting, sever every connection).

use crate::compute::{SpanCounter, SpanSpec};
use crate::fault::FaultPlan;
use crate::wire::{WorkerReply, WorkerRequest, WorkerStats, PROTOCOL_VERSION};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest request line a worker accepts, matching the audit server's
/// bound — anything longer is answered with an error and the
/// connection closed.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Poll interval for connection reads (bounds stop-flag latency).
const READ_POLL: Duration = Duration::from_millis(20);

#[derive(Debug, Default)]
struct StatCells {
    requests: AtomicU64,
    spans: AtomicU64,
    worlds: AtomicU64,
    errors: AtomicU64,
    faults_injected: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            requests: self.requests.load(Ordering::SeqCst),
            spans: self.spans.load(Ordering::SeqCst),
            worlds: self.worlds.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
            faults_injected: self.faults_injected.load(Ordering::SeqCst),
        }
    }
}

/// A running shard worker (see module docs). Dropping the handle does
/// not stop the worker; call [`ShardWorker::shutdown`].
#[derive(Debug)]
pub struct ShardWorker {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    killed: Arc<AtomicBool>,
    stats: Arc<StatCells>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Everything a connection thread needs, shared via `Arc`.
#[derive(Debug)]
struct WorkerShared {
    counter: Arc<SpanCounter>,
    fault: Arc<FaultPlan>,
    stats: Arc<StatCells>,
    stop: Arc<AtomicBool>,
    killed: Arc<AtomicBool>,
}

impl ShardWorker {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving.
    pub fn bind(
        addr: &str,
        counter: Arc<SpanCounter>,
        fault: Arc<FaultPlan>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let killed = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatCells::default());
        let shared = Arc::new(WorkerShared {
            counter,
            fault,
            stats: stats.clone(),
            stop: stop.clone(),
            killed: killed.clone(),
        });
        let accept_thread = std::thread::spawn(move || accept_loop(listener, shared));
        Ok(ShardWorker {
            local_addr,
            stop,
            killed,
            stats,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (for `"…:0"` binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Whether a `kill-after` fault has fired (the worker no longer
    /// accepts or serves).
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WorkerStats {
        self.stats.snapshot()
    }

    /// Stops accepting, severs connections, and joins the accept
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the worker stops (shutdown op, kill fault, or
    /// [`ShardWorker::shutdown`] from another thread).
    pub fn join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<WorkerShared>) {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) && !shared.killed.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                conn_threads.push(std::thread::spawn(move || serve_conn(stream, &shared)));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(READ_POLL);
            }
            Err(_) => break,
        }
        conn_threads.retain(|t| !t.is_finished());
    }
    // Connection threads observe the stop/killed flags within one
    // poll interval; joining bounds shutdown instead of leaking them.
    for t in conn_threads {
        let _ = t.join();
    }
}

/// Serves one connection until EOF, stop, kill, or an injected drop.
fn serve_conn(stream: TcpStream, shared: &WorkerShared) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) || shared.killed.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match read_bounded_line(&mut reader, &mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Oversized line: typed error, then hang up.
                let reply = WorkerReply::Err {
                    id: None,
                    error: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                };
                shared.stats.errors.fetch_add(1, Ordering::SeqCst);
                let _ = writeln!(writer, "{}", reply.to_json());
                return;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if !serve_line(trimmed, &mut writer, shared) {
            return;
        }
    }
}

/// Reads one `\n`-terminated line, enforcing [`MAX_LINE_BYTES`].
/// Returns `InvalidData` when the cap is hit mid-line.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> std::io::Result<usize> {
    // `read_line` on a capped `Take` would split long lines into two
    // apparent requests; instead accumulate with the cap checked per
    // fill so an oversized line is detected, not resynchronized.
    let mut total = 0usize;
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) => {
                if total == 0 {
                    return Err(e);
                }
                // Mid-line poll timeout: keep accumulating.
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut {
                    continue;
                }
                return Err(e);
            }
        };
        if available.is_empty() {
            return Ok(total); // EOF (possibly with an unterminated tail)
        }
        let (used, done) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (available.len(), false),
        };
        if total + used > MAX_LINE_BYTES {
            reader.consume(used);
            return Err(std::io::Error::new(ErrorKind::InvalidData, "line too long"));
        }
        line.push_str(&String::from_utf8_lossy(&available[..used]));
        reader.consume(used);
        total += used;
        if done {
            return Ok(total);
        }
    }
}

/// Decodes and serves one request line. Returns `false` when the
/// connection must close (drop fault, kill, shutdown op, write error).
fn serve_line(line: &str, writer: &mut TcpStream, shared: &WorkerShared) -> bool {
    shared.stats.requests.fetch_add(1, Ordering::SeqCst);
    let action = shared.fault.next_request();
    if action.is_fault() {
        shared.stats.faults_injected.fetch_add(1, Ordering::SeqCst);
    }
    if action.delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(action.delay_ms));
    }
    if action.drop_connection {
        return false;
    }
    let reply = match WorkerRequest::from_json(line) {
        Ok(WorkerRequest::Hello) => WorkerReply::Hello {
            version: PROTOCOL_VERSION,
            num_points: shared.counter.num_points() as u64,
            num_regions: shared.counter.num_regions() as u64,
            num_words: shared.counter.num_label_words() as u64,
        },
        Ok(WorkerRequest::Stats) => WorkerReply::Stats(shared.stats.snapshot()),
        Ok(WorkerRequest::Shutdown) => {
            shared.stop.store(true, Ordering::SeqCst);
            return false;
        }
        Ok(WorkerRequest::Count(c)) => match shared.counter.count_span(SpanSpec {
            null_model: c.null_model,
            worldgen: c.worldgen,
            seed: c.seed,
            first: c.first as usize,
            count: c.count as usize,
            word_lo: c.word_lo as usize,
            word_hi: c.word_hi as usize,
        }) {
            Ok(partials) => {
                shared.stats.spans.fetch_add(1, Ordering::SeqCst);
                shared.stats.worlds.fetch_add(c.count, Ordering::SeqCst);
                WorkerReply::Count {
                    id: c.id,
                    counts: partials.counts,
                    p_partials: partials.p_partials,
                }
            }
            Err(e) => {
                shared.stats.errors.fetch_add(1, Ordering::SeqCst);
                WorkerReply::Err {
                    id: Some(c.id),
                    error: e.to_string(),
                }
            }
        },
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::SeqCst);
            WorkerReply::Err {
                id: None,
                error: format!("malformed request: {}", e.message),
            }
        }
    };
    let wire = if action.corrupt_reply {
        // A truncated prefix of the real reply: decodes on no parser,
        // exercising the coordinator's corrupt-reply re-dispatch.
        let full = reply.to_json();
        full[..full.len() / 2].to_string()
    } else {
        reply.to_json()
    };
    if writeln!(writer, "{wire}").is_err() || writer.flush().is_err() {
        return false;
    }
    if action.kill_after {
        shared.killed.store(true, Ordering::SeqCst);
        return false;
    }
    true
}
