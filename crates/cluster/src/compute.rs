//! The shard-span count kernel shared by worker processes and the
//! coordinator's degraded-local fallback.
//!
//! A *span* is a rectangle of the distributed count matrix: a run of
//! consecutive world indices (`first .. first + count`) crossed with a
//! word window (`word_lo .. word_hi`) of the Morton-ordered label
//! bitset. [`SpanCounter::count_span`] produces the exact integer
//! region-count partials of that rectangle, and the two invariants
//! that make the distributed audit bit-identical to the single-process
//! engine hold *by construction*:
//!
//! - **World identity.** World `w`'s labels depend only on
//!   `(null_model, seed, worldgen, w)` — never on which worker
//!   generates them, nor on how word windows partition the bitset
//!   ([`ScanEngine::generate_world_window`] draws the window's
//!   generation chunks from their absolutely-positioned substreams).
//! - **Partition sums.** Region counts and per-world positive totals
//!   over the clipped CSR views sum exactly (integer addition) across
//!   any partition of the label words, so the coordinator's reduction
//!   reproduces the unsharded counts bit for bit.
//!
//! [`ScanEngine::generate_world_window`]: sfscan::prepared::PreparedAudit

use sfindex::BlockedMembership;
use sfscan::prepared::PreparedAudit;
use sfscan::{CountingStrategy, NullModel, WorldGen};
use sfstats::rng::world_rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One span of the distributed count matrix: worlds
/// `first .. first + count` of the `(null_model, seed, worldgen)`
/// stream, restricted to label words `word_lo .. word_hi`. The local
/// twin of the wire's count request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSpec {
    pub null_model: NullModel,
    pub worldgen: WorldGen,
    pub seed: u64,
    pub first: usize,
    pub count: usize,
    pub word_lo: usize,
    pub word_hi: usize,
}

/// The exact integer partials of one counted span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanPartials {
    /// Region-major count partials: `counts[r * count + k]` is region
    /// `r`'s positive count within the word window under world
    /// `first + k`.
    pub counts: Vec<u64>,
    /// Per-world positive totals within the word window:
    /// `p_partials[k]` under world `first + k`.
    pub p_partials: Vec<u64>,
}

/// Errors a span request can hit before any counting happens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanError {
    /// The engine did not resolve to the blocked counting strategy, so
    /// there is no CSR to clip. Distributed counting requires
    /// [`CountingStrategy::Blocked`] (or an `Auto` that resolves to
    /// it).
    NotBlocked,
    /// The word window is inverted or exceeds the label words.
    BadWindow { word_lo: usize, word_hi: usize },
    /// The span is empty.
    EmptySpan,
}

impl std::fmt::Display for SpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpanError::NotBlocked => write!(
                f,
                "distributed counting requires the blocked counting strategy"
            ),
            SpanError::BadWindow { word_lo, word_hi } => {
                write!(f, "bad word window {word_lo}..{word_hi}")
            }
            SpanError::EmptySpan => write!(f, "empty world span"),
        }
    }
}

impl std::error::Error for SpanError {}

/// Counts world-span × word-window rectangles against one prepared
/// engine, caching the clipped CSR views (a worker serves the same
/// window for every span of an audit; the coordinator's degraded path
/// revisits windows across retries).
#[derive(Debug)]
pub struct SpanCounter {
    prepared: Arc<PreparedAudit>,
    /// Clipped views keyed by word window. Built lazily; a view is an
    /// O(window) CSR slice, so the cache trades a few MB for not
    /// re-clipping on every span.
    views: Mutex<HashMap<(usize, usize), Arc<BlockedMembership>>>,
}

impl SpanCounter {
    /// Wraps a prepared engine. Fails unless the engine resolved to
    /// the blocked counting strategy — the only substrate with
    /// clippable word-window views.
    pub fn new(prepared: Arc<PreparedAudit>) -> Result<Self, SpanError> {
        if prepared.engine().resolved_strategy() != CountingStrategy::Blocked
            || prepared.engine().blocked().is_none()
        {
            return Err(SpanError::NotBlocked);
        }
        Ok(SpanCounter {
            prepared,
            views: Mutex::new(HashMap::new()),
        })
    }

    /// The engine this counter reads.
    pub fn prepared(&self) -> &Arc<PreparedAudit> {
        &self.prepared
    }

    /// Total label words — the axis [`shard_word_bounds`]
    /// (`sfindex::shard_word_bounds`) partitions.
    pub fn num_label_words(&self) -> usize {
        self.prepared
            .engine()
            .blocked()
            .expect("constructor verified the blocked substrate")
            .num_label_words()
    }

    /// Number of candidate regions (rows of the count matrix).
    pub fn num_regions(&self) -> usize {
        self.prepared.num_regions()
    }

    /// Number of indexed points (dataset-identity check for workers).
    pub fn num_points(&self) -> usize {
        self.prepared.num_points()
    }

    fn view(&self, word_lo: usize, word_hi: usize) -> Arc<BlockedMembership> {
        let mut views = self.views.lock().expect("view cache lock");
        views
            .entry((word_lo, word_hi))
            .or_insert_with(|| {
                Arc::new(
                    self.prepared
                        .engine()
                        .blocked()
                        .expect("constructor verified the blocked substrate")
                        .clip_to_words(word_lo, word_hi),
                )
            })
            .clone()
    }

    /// Counts one span: generates the spec's worlds
    /// (window-restricted generation when the stream supports it, full
    /// generation otherwise — the window's words are identical either
    /// way) and recounts them against the clipped CSR view of its word
    /// window.
    pub fn count_span(&self, spec: SpanSpec) -> Result<SpanPartials, SpanError> {
        let SpanSpec {
            null_model,
            worldgen,
            seed,
            first,
            count,
            word_lo,
            word_hi,
        } = spec;
        if count == 0 {
            return Err(SpanError::EmptySpan);
        }
        if word_lo > word_hi || word_hi > self.num_label_words() {
            return Err(SpanError::BadWindow { word_lo, word_hi });
        }
        let engine = self.prepared.engine();
        let mut worlds = Vec::with_capacity(count);
        for k in 0..count {
            let mut rng = world_rng(seed, (first + k) as u64);
            worlds.push(
                engine.generate_world_window(null_model, worldgen, &mut rng, word_lo, word_hi),
            );
        }
        let refs: Vec<&sfindex::BitLabels> = worlds.iter().collect();
        let view = self.view(word_lo, word_hi);
        let mut counts = Vec::new();
        view.count_all_many_into(&refs, engine.kernel(), &mut counts);
        let p_partials = worlds
            .iter()
            .map(|labels| labels.count_ones_in_words(word_lo, word_hi))
            .collect();
        Ok(SpanPartials { counts, p_partials })
    }
}
