//! The shard wire protocol: newline-delimited JSON over TCP, one
//! request line → one reply line, same framing discipline as the
//! `sfnet` audit transport.
//!
//! Requests are objects dispatched on their `"op"` field:
//!
//! ```text
//! {"op":"hello"}
//! {"op":"count","id":7,"null_model":"Bernoulli","seed":42,"worldgen":"Word",
//!  "first":0,"count":8,"word_lo":0,"word_hi":128}
//! {"op":"stats"}
//! ```
//!
//! Replies always carry `"ok"` plus the request's `"id"` when it had
//! one; a count reply's `counts` array is region-major
//! (`counts[r * count + k]` = region `r` under world `first + k`) and
//! `p_partials[k]` is world `first + k`'s positive total within the
//! word window. Field order is fixed (the vendored serializer emits
//! object keys in construction order), so replies are byte-stable —
//! the property the fault-injection transcripts diff against.

use serde::{self, Deserialize, Serialize, Value};
use sfscan::{NullModel, WorldGen};

/// Protocol version advertised in [`HelloReply`]; bumped on any wire
/// change.
pub const PROTOCOL_VERSION: u64 = 1;

/// One request line, dispatched on `"op"`.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerRequest {
    /// Dataset-identity handshake.
    Hello,
    /// Count one span × window rectangle.
    Count(CountRequest),
    /// Worker-side counters snapshot.
    Stats,
    /// Orderly worker shutdown (the coordinator never sends this; the
    /// CLI harness does).
    Shutdown,
}

/// The count-partial descriptor: which worlds, which word window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountRequest {
    /// Caller-chosen id echoed in the reply (re-dispatch dedup).
    pub id: u64,
    /// World-stream null model.
    pub null_model: NullModel,
    /// World-stream seed.
    pub seed: u64,
    /// World-stream generator version.
    pub worldgen: WorldGen,
    /// First world index of the span.
    pub first: u64,
    /// Number of worlds in the span.
    pub count: u64,
    /// First label word of the window (inclusive).
    pub word_lo: u64,
    /// One past the last label word of the window.
    pub word_hi: u64,
}

impl Serialize for WorkerRequest {
    fn to_value(&self) -> Value {
        match self {
            WorkerRequest::Hello => Value::Object(vec![(
                String::from("op"),
                Value::Str(String::from("hello")),
            )]),
            WorkerRequest::Stats => Value::Object(vec![(
                String::from("op"),
                Value::Str(String::from("stats")),
            )]),
            WorkerRequest::Shutdown => Value::Object(vec![(
                String::from("op"),
                Value::Str(String::from("shutdown")),
            )]),
            WorkerRequest::Count(c) => Value::Object(vec![
                (String::from("op"), Value::Str(String::from("count"))),
                (String::from("id"), Value::U64(c.id)),
                (String::from("null_model"), c.null_model.to_value()),
                (String::from("seed"), Value::U64(c.seed)),
                (String::from("worldgen"), c.worldgen.to_value()),
                (String::from("first"), Value::U64(c.first)),
                (String::from("count"), Value::U64(c.count)),
                (String::from("word_lo"), Value::U64(c.word_lo)),
                (String::from("word_hi"), Value::U64(c.word_hi)),
            ]),
        }
    }
}

impl Deserialize for WorkerRequest {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let op: String = serde::get_field(value, "op")?;
        match op.as_str() {
            "hello" => Ok(WorkerRequest::Hello),
            "stats" => Ok(WorkerRequest::Stats),
            "shutdown" => Ok(WorkerRequest::Shutdown),
            "count" => Ok(WorkerRequest::Count(CountRequest {
                id: serde::get_field(value, "id")?,
                null_model: serde::get_field(value, "null_model")?,
                seed: serde::get_field(value, "seed")?,
                worldgen: serde::get_field(value, "worldgen")?,
                first: serde::get_field(value, "first")?,
                count: serde::get_field(value, "count")?,
                word_lo: serde::get_field(value, "word_lo")?,
                word_hi: serde::get_field(value, "word_hi")?,
            })),
            other => Err(serde::Error::msg(format!("unknown op `{other}`"))),
        }
    }
}

impl WorkerRequest {
    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("request serialisation cannot fail")
    }

    /// Decodes one line.
    pub fn from_json(json: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(json)
    }
}

/// Worker-side counters, serialized into [`WorkerReply::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Request lines decoded.
    pub requests: u64,
    /// Count spans served.
    pub spans: u64,
    /// Worlds generated and counted across all spans.
    pub worlds: u64,
    /// Request lines that produced an error reply.
    pub errors: u64,
    /// Faults injected by the active [`FaultPlan`](crate::FaultPlan).
    pub faults_injected: u64,
}

/// One reply line.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerReply {
    /// Handshake echo: dataset shape + protocol version.
    Hello {
        /// Wire protocol version ([`PROTOCOL_VERSION`]).
        version: u64,
        /// Indexed points.
        num_points: u64,
        /// Candidate regions (count-matrix rows).
        num_regions: u64,
        /// Label words (the sharded axis).
        num_words: u64,
    },
    /// A counted span's exact integer partials.
    Count {
        /// Echo of the request id.
        id: u64,
        /// Region-major partials (`counts[r * count + k]`).
        counts: Vec<u64>,
        /// Per-world window positive totals.
        p_partials: Vec<u64>,
    },
    /// Counter snapshot.
    Stats(WorkerStats),
    /// Typed failure; `id` echoes the request when it carried one.
    Err {
        /// Echo of the request id, when the request had one.
        id: Option<u64>,
        /// Human-readable reason.
        error: String,
    },
}

impl Serialize for WorkerReply {
    fn to_value(&self) -> Value {
        match self {
            WorkerReply::Hello {
                version,
                num_points,
                num_regions,
                num_words,
            } => Value::Object(vec![
                (String::from("ok"), Value::Bool(true)),
                (String::from("op"), Value::Str(String::from("hello"))),
                (String::from("version"), Value::U64(*version)),
                (String::from("num_points"), Value::U64(*num_points)),
                (String::from("num_regions"), Value::U64(*num_regions)),
                (String::from("num_words"), Value::U64(*num_words)),
            ]),
            WorkerReply::Count {
                id,
                counts,
                p_partials,
            } => Value::Object(vec![
                (String::from("ok"), Value::Bool(true)),
                (String::from("id"), Value::U64(*id)),
                (String::from("counts"), counts.to_value()),
                (String::from("p_partials"), p_partials.to_value()),
            ]),
            WorkerReply::Stats(stats) => Value::Object(vec![
                (String::from("ok"), Value::Bool(true)),
                (String::from("op"), Value::Str(String::from("stats"))),
                (String::from("stats"), stats.to_value()),
            ]),
            WorkerReply::Err { id, error } => Value::Object(vec![
                (String::from("ok"), Value::Bool(false)),
                (
                    String::from("id"),
                    match id {
                        Some(id) => Value::U64(*id),
                        None => Value::Null,
                    },
                ),
                (String::from("error"), Value::Str(error.clone())),
            ]),
        }
    }
}

impl Deserialize for WorkerReply {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let ok: bool = serde::get_field(value, "ok")?;
        if !ok {
            let id = match value.get("id") {
                Some(Value::U64(id)) => Some(*id),
                _ => None,
            };
            return Ok(WorkerReply::Err {
                id,
                error: serde::get_field(value, "error")?,
            });
        }
        match value.get("op") {
            Some(Value::Str(op)) if op == "hello" => Ok(WorkerReply::Hello {
                version: serde::get_field(value, "version")?,
                num_points: serde::get_field(value, "num_points")?,
                num_regions: serde::get_field(value, "num_regions")?,
                num_words: serde::get_field(value, "num_words")?,
            }),
            Some(Value::Str(op)) if op == "stats" => {
                Ok(WorkerReply::Stats(serde::get_field(value, "stats")?))
            }
            Some(Value::Str(op)) => Err(serde::Error::msg(format!("unknown reply op `{op}`"))),
            Some(_) => Err(serde::Error::msg("reply `op` must be a string")),
            None => Ok(WorkerReply::Count {
                id: serde::get_field(value, "id")?,
                counts: serde::get_field(value, "counts")?,
                p_partials: serde::get_field(value, "p_partials")?,
            }),
        }
    }
}

impl WorkerReply {
    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("reply serialisation cannot fail")
    }

    /// Decodes one line.
    pub fn from_json(json: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(json)
    }
}
