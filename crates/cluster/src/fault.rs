//! Deterministic fault injection for shard workers.
//!
//! A [`FaultPlan`] is a comma-separated list of counter-keyed rules,
//! evaluated against the worker's lifetime request counter (1-based —
//! the first request a worker serves is request 1). Because the
//! trigger is a plain counter, not a timer or RNG, a plan replays
//! identically on every run — the property the bit-identity
//! transcripts under faults rely on.
//!
//! Grammar (whitespace-free tokens joined by `,`):
//!
//! ```text
//! kill-after=N      exit the worker after serving N requests
//! drop-at=N         drop the connection instead of answering request N
//! corrupt-at=N      answer request N with a truncated (undecodable) line
//! delay-at=N:MS     sleep MS milliseconds before answering request N
//! delay-every=K:MS  sleep MS milliseconds before every K-th request
//! ```
//!
//! Example: `kill-after=3,delay-at=2:50` — delay the 2nd request by
//! 50 ms, serve the 3rd, then die.

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

/// What the worker does to one request, decided *before* the request
/// is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultAction {
    /// Sleep this long before replying.
    pub delay_ms: u64,
    /// Drop the connection instead of replying.
    pub drop_connection: bool,
    /// Reply with a truncated, undecodable line.
    pub corrupt_reply: bool,
    /// Exit the worker after this request's action completes.
    pub kill_after: bool,
}

impl FaultAction {
    /// Whether any fault fires.
    pub fn is_fault(&self) -> bool {
        self.delay_ms > 0 || self.drop_connection || self.corrupt_reply || self.kill_after
    }
}

/// One parsed rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    KillAfter(u64),
    DropAt(u64),
    CorruptAt(u64),
    DelayAt(u64, u64),
    DelayEvery(u64, u64),
}

/// A deterministic, counter-keyed fault schedule (see module docs).
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
    served: AtomicU64,
}

/// A rule string that does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultPlanError(String);

impl std::fmt::Display for ParseFaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad fault rule `{}` (expected kill-after=N, drop-at=N, corrupt-at=N, \
             delay-at=N:MS, or delay-every=K:MS)",
            self.0
        )
    }
}

impl std::error::Error for ParseFaultPlanError {}

impl FromStr for FaultPlan {
    type Err = ParseFaultPlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut rules = Vec::new();
        for token in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| ParseFaultPlanError(token.to_string()))?;
            let bad = || ParseFaultPlanError(token.to_string());
            let uint = |v: &str| v.parse::<u64>().map_err(|_| bad());
            let pair = |v: &str| -> Result<(u64, u64), ParseFaultPlanError> {
                let (a, b) = v.split_once(':').ok_or_else(bad)?;
                Ok((uint(a)?, uint(b)?))
            };
            rules.push(match key {
                "kill-after" => Rule::KillAfter(uint(value)?),
                "drop-at" => Rule::DropAt(uint(value)?),
                "corrupt-at" => Rule::CorruptAt(uint(value)?),
                "delay-at" => {
                    let (n, ms) = pair(value)?;
                    Rule::DelayAt(n, ms)
                }
                "delay-every" => {
                    let (k, ms) = pair(value)?;
                    if k == 0 {
                        return Err(bad());
                    }
                    Rule::DelayEvery(k, ms)
                }
                _ => return Err(bad()),
            });
        }
        Ok(FaultPlan {
            rules,
            served: AtomicU64::new(0),
        })
    }
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan holds any rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Advances the request counter and returns the action for this
    /// request. Thread-safe; each call claims the next counter value.
    pub fn next_request(&self) -> FaultAction {
        let n = self.served.fetch_add(1, Ordering::SeqCst) + 1;
        let mut action = FaultAction::default();
        for rule in &self.rules {
            match *rule {
                Rule::KillAfter(after) if n >= after => action.kill_after = true,
                Rule::DropAt(at) if n == at => action.drop_connection = true,
                Rule::CorruptAt(at) if n == at => action.corrupt_reply = true,
                Rule::DelayAt(at, ms) if n == at => action.delay_ms = action.delay_ms.max(ms),
                Rule::DelayEvery(k, ms) if n.is_multiple_of(k) => {
                    action.delay_ms = action.delay_ms.max(ms)
                }
                _ => {}
            }
        }
        action
    }

    /// Requests whose action has been decided so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }
}
