//! The distributed coordinator: a [`WorldEvaluator`] that fans each
//! world span out across shard workers and reduces their exact
//! integer partials back into the engine's τ fold.
//!
//! ## Bit-identity
//!
//! For a span of worlds × the full word axis, the coordinator
//! partitions the label words into one window per worker
//! ([`shard_word_bounds`]), collects each window's region-count and
//! positive-total partials, sums them (exact integer addition over a
//! partition), and calls [`fold_counts`] — the same kernel, the same
//! region order, the same comparisons as the single-process engine.
//! *Where* a partial was computed (which worker, which retry, or the
//! coordinator's own degraded fallback) cannot change a bit of it,
//! because world generation is absolutely positioned in
//! `(seed, world, chunk)` and counting is pure.
//!
//! ## Failure story
//!
//! Each dispatch carries a deadline derived from the injected
//! [`Clock`]. A missed deadline, dropped connection, undecodable
//! reply, or remote error fails the dispatch: the worker takes a
//! health-state hit (`Healthy → Suspect`, and `Dead` after
//! [`CoordinatorConfig::dead_after`] consecutive failures), the
//! connection is discarded, and exactly that shard's span is
//! re-dispatched after a capped exponential backoff — first to the
//! same worker while it is merely `Suspect`, then to the other live
//! workers. When no live worker remains for a span, the coordinator
//! degrades gracefully: it recomputes the window locally with its own
//! [`SpanCounter`], so an audit always completes.
//!
//! [`fold_counts`]: sfscan::prepared::PreparedAudit
//! [`shard_word_bounds`]: sfindex::shard_word_bounds

use crate::compute::{SpanCounter, SpanError, SpanSpec};
use crate::wire::{CountRequest, WorkerReply, WorkerRequest};
use serde::{Deserialize, Serialize};
use sfindex::shard_word_bounds;
use sfnet::Clock;
use sfscan::prepared::{PreparedAudit, WorldClass, WorldEvaluator};
use sfscan::Direction;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Poll interval for reply reads: short enough that deadline checks
/// stay responsive, long enough not to spin.
const REPLY_POLL: Duration = Duration::from_millis(20);

/// Re-dispatch and health-state policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinatorConfig {
    /// Per-dispatch deadline in [`Clock`] units (µs under
    /// [`SystemClock`](sfnet::SystemClock)): a reply not fully read by
    /// `now() + dispatch_timeout` fails the dispatch.
    pub dispatch_timeout: u64,
    /// TCP connect timeout in milliseconds.
    pub connect_timeout_ms: u64,
    /// First re-dispatch backoff in milliseconds; attempt `a` waits
    /// `backoff_base_ms << a`, capped at
    /// [`CoordinatorConfig::backoff_cap_ms`].
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Dispatch attempts per shard span before degrading to the local
    /// fallback.
    pub max_attempts: u32,
    /// Consecutive failures that turn a `Suspect` worker `Dead`.
    pub dead_after: u32,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            dispatch_timeout: 10_000_000, // 10 s in µs
            connect_timeout_ms: 1_000,
            backoff_base_ms: 5,
            backoff_cap_ms: 200,
            max_attempts: 4,
            dead_after: 3,
        }
    }
}

/// A worker's failure-state machine. Transitions happen on dispatch
/// outcomes only: any failure while `Healthy` makes it `Suspect`,
/// [`CoordinatorConfig::dead_after`] consecutive failures make it
/// `Dead`, and any success resets to `Healthy`. `Dead` is terminal for
/// dispatch routing (no live-ness probing — a deterministic audit run
/// is short relative to operator intervention), but a `Dead` worker's
/// spans still complete via other workers or the local fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerHealth {
    /// Serving normally.
    Healthy,
    /// At least one recent failure; still dispatched to.
    Suspect,
    /// Too many consecutive failures; routed around.
    Dead,
}

/// One worker's mutable connection + health state, serialized by its
/// own mutex so concurrent spans pipeline across workers but
/// request/reply pairs never interleave on one socket.
#[derive(Debug)]
struct WorkerSlot {
    addr: String,
    state: Mutex<SlotState>,
}

#[derive(Debug, Default)]
struct SlotState {
    stream: Option<BufReader<TcpStream>>,
    health: Option<WorkerHealth>, // None until first dispatch
    consecutive_failures: u32,
    last_error: Option<String>,
}

impl SlotState {
    fn health(&self) -> WorkerHealth {
        self.health.unwrap_or(WorkerHealth::Healthy)
    }
}

/// Cluster-level counters (atomics; snapshot via
/// [`DistributedEvaluator::stats`]).
#[derive(Debug, Default)]
struct StatCells {
    dispatches: AtomicU64,
    completed_remote: AtomicU64,
    redispatches: AtomicU64,
    deadline_misses: AtomicU64,
    conn_errors: AtomicU64,
    corrupt_replies: AtomicU64,
    remote_errors: AtomicU64,
    degraded_local_spans: AtomicU64,
    spans: AtomicU64,
    worlds: AtomicU64,
}

/// Snapshot of the coordinator's failure accounting — the numbers the
/// bench artifact's fault rows report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Wire dispatches attempted (including retries).
    pub dispatches: u64,
    /// Dispatches that returned a valid reply.
    pub completed_remote: u64,
    /// Re-dispatches after a failed attempt.
    pub redispatches: u64,
    /// Dispatches failed on the injected-clock deadline.
    pub deadline_misses: u64,
    /// Dispatches failed on connect/write/EOF errors.
    pub conn_errors: u64,
    /// Dispatches failed on undecodable or mismatched replies.
    pub corrupt_replies: u64,
    /// Dispatches the worker answered with a typed error.
    pub remote_errors: u64,
    /// Shard spans completed by the coordinator's local fallback.
    pub degraded_local_spans: u64,
    /// Shard spans completed in total.
    pub spans: u64,
    /// Worlds evaluated through the evaluator.
    pub worlds: u64,
}

impl StatCells {
    fn snapshot(&self) -> ClusterStats {
        ClusterStats {
            dispatches: self.dispatches.load(Ordering::SeqCst),
            completed_remote: self.completed_remote.load(Ordering::SeqCst),
            redispatches: self.redispatches.load(Ordering::SeqCst),
            deadline_misses: self.deadline_misses.load(Ordering::SeqCst),
            conn_errors: self.conn_errors.load(Ordering::SeqCst),
            corrupt_replies: self.corrupt_replies.load(Ordering::SeqCst),
            remote_errors: self.remote_errors.load(Ordering::SeqCst),
            degraded_local_spans: self.degraded_local_spans.load(Ordering::SeqCst),
            spans: self.spans.load(Ordering::SeqCst),
            worlds: self.worlds.load(Ordering::SeqCst),
        }
    }
}

/// Why one dispatch attempt failed (drives the stats counters and the
/// health machine; never the output values).
#[derive(Debug)]
enum DispatchError {
    Connect(String),
    Io(String),
    Deadline,
    Corrupt(String),
    Remote(String),
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::Connect(e) => write!(f, "connect: {e}"),
            DispatchError::Io(e) => write!(f, "io: {e}"),
            DispatchError::Deadline => write!(f, "dispatch deadline missed"),
            DispatchError::Corrupt(e) => write!(f, "corrupt reply: {e}"),
            DispatchError::Remote(e) => write!(f, "worker error: {e}"),
        }
    }
}

/// The coordinator (see module docs). Plugs into
/// [`AuditService::set_evaluator`](sfserve::AuditService) or directly
/// into [`PreparedAudit::run_batch_cached_with`].
pub struct DistributedEvaluator {
    counter: SpanCounter,
    workers: Vec<WorkerSlot>,
    bounds: Vec<(usize, usize)>,
    config: CoordinatorConfig,
    clock: Arc<dyn Clock>,
    next_id: AtomicU64,
    stats: StatCells,
}

impl std::fmt::Debug for DistributedEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedEvaluator")
            .field("workers", &self.workers)
            .field("bounds", &self.bounds)
            .field("config", &self.config)
            .field("stats", &self.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl DistributedEvaluator {
    /// Builds a coordinator over `addrs` (one preferred shard window
    /// per address). Connections are lazy — a worker that is down at
    /// construction simply fails its first dispatch. Requires a
    /// blocked-counting engine and at least one worker address.
    pub fn new(
        prepared: Arc<PreparedAudit>,
        addrs: &[String],
        config: CoordinatorConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, SpanError> {
        if addrs.is_empty() {
            return Err(SpanError::EmptySpan);
        }
        let counter = SpanCounter::new(prepared)?;
        let bounds = shard_word_bounds(counter.num_label_words(), addrs.len());
        Ok(DistributedEvaluator {
            counter,
            workers: addrs
                .iter()
                .map(|addr| WorkerSlot {
                    addr: addr.clone(),
                    state: Mutex::new(SlotState::default()),
                })
                .collect(),
            bounds,
            config,
            clock,
            next_id: AtomicU64::new(0),
            stats: StatCells::default(),
        })
    }

    /// Failure-accounting snapshot.
    pub fn stats(&self) -> ClusterStats {
        self.stats.snapshot()
    }

    /// Current health of worker `w` (`Healthy` before first contact).
    pub fn worker_health(&self, w: usize) -> WorkerHealth {
        self.workers[w]
            .state
            .lock()
            .expect("worker slot lock")
            .health()
    }

    /// The last dispatch failure recorded against worker `w`, if any.
    pub fn worker_last_error(&self, w: usize) -> Option<String> {
        self.workers[w]
            .state
            .lock()
            .expect("worker slot lock")
            .last_error
            .clone()
    }

    /// The word windows the coordinator shards over, in worker order.
    pub fn shard_bounds(&self) -> &[(usize, usize)] {
        &self.bounds
    }

    /// One shard's partials for one span, with the full re-dispatch /
    /// degrade policy applied.
    fn shard_partials(
        &self,
        shard: usize,
        class: &WorldClass,
        first: usize,
        count: usize,
    ) -> (Vec<u64>, Vec<u64>) {
        let (word_lo, word_hi) = self.bounds[shard];
        let request = CountRequest {
            id: self.next_id.fetch_add(1, Ordering::SeqCst),
            null_model: class.null_model,
            seed: class.seed,
            worldgen: class.worldgen,
            first: first as u64,
            count: count as u64,
            word_lo: word_lo as u64,
            word_hi: word_hi as u64,
        };
        for attempt in 0..self.config.max_attempts {
            // Route: the shard's own worker first, then the other
            // non-Dead workers in ring order.
            let Some(w) = self.route(shard, attempt) else {
                break; // every worker is Dead
            };
            if attempt > 0 {
                self.stats.redispatches.fetch_add(1, Ordering::SeqCst);
                let shift = (attempt - 1).min(16);
                let backoff =
                    (self.config.backoff_base_ms << shift).min(self.config.backoff_cap_ms);
                if backoff > 0 {
                    std::thread::sleep(Duration::from_millis(backoff));
                }
            }
            match self.dispatch(w, &request) {
                Ok((counts, p_partials)) => {
                    self.stats.completed_remote.fetch_add(1, Ordering::SeqCst);
                    return (counts, p_partials);
                }
                Err(e) => {
                    match &e {
                        DispatchError::Deadline => {
                            self.stats.deadline_misses.fetch_add(1, Ordering::SeqCst)
                        }
                        DispatchError::Connect(_) | DispatchError::Io(_) => {
                            self.stats.conn_errors.fetch_add(1, Ordering::SeqCst)
                        }
                        DispatchError::Corrupt(_) => {
                            self.stats.corrupt_replies.fetch_add(1, Ordering::SeqCst)
                        }
                        DispatchError::Remote(_) => {
                            self.stats.remote_errors.fetch_add(1, Ordering::SeqCst)
                        }
                    };
                }
            }
        }
        // Graceful degradation: the audit completes even with every
        // worker dead — same window, same worlds, same bits.
        self.stats
            .degraded_local_spans
            .fetch_add(1, Ordering::SeqCst);
        let partials = self
            .counter
            .count_span(SpanSpec {
                null_model: class.null_model,
                worldgen: class.worldgen,
                seed: class.seed,
                first,
                count,
                word_lo,
                word_hi,
            })
            .expect("the coordinator's own engine accepts every span it shards");
        (partials.counts, partials.p_partials)
    }

    /// Picks the worker for `attempt`: the shard's preferred worker,
    /// then the remaining non-`Dead` workers in ring order. `None`
    /// when every worker is `Dead`.
    fn route(&self, shard: usize, attempt: u32) -> Option<usize> {
        let n = self.workers.len();
        let mut live: Vec<usize> = (0..n)
            .map(|i| (shard + i) % n)
            .filter(|&w| {
                self.workers[w]
                    .state
                    .lock()
                    .expect("worker slot lock")
                    .health()
                    != WorkerHealth::Dead
            })
            .collect();
        if live.is_empty() {
            return None;
        }
        // Retry the preferred worker once while merely Suspect, then
        // rotate through the alternates.
        let rotation = (attempt as usize / 2).min(live.len() - 1) % live.len();
        live.rotate_left(rotation);
        Some(live[0])
    }

    /// One wire dispatch: connect (lazily), send, read one reply under
    /// the deadline, validate shape. Updates the worker's health
    /// machine on both outcomes.
    fn dispatch(
        &self,
        w: usize,
        request: &CountRequest,
    ) -> Result<(Vec<u64>, Vec<u64>), DispatchError> {
        self.stats.dispatches.fetch_add(1, Ordering::SeqCst);
        let slot = &self.workers[w];
        let mut state = slot.state.lock().expect("worker slot lock");
        let result = self.dispatch_locked(&mut state, &slot.addr, request);
        match &result {
            Ok(_) => {
                state.consecutive_failures = 0;
                state.health = Some(WorkerHealth::Healthy);
            }
            Err(e) => {
                state.stream = None; // never reuse a failed socket
                state.last_error = Some(e.to_string());
                state.consecutive_failures += 1;
                state.health = Some(if state.consecutive_failures >= self.config.dead_after {
                    WorkerHealth::Dead
                } else {
                    WorkerHealth::Suspect
                });
            }
        }
        result
    }

    fn dispatch_locked(
        &self,
        state: &mut SlotState,
        addr: &str,
        request: &CountRequest,
    ) -> Result<(Vec<u64>, Vec<u64>), DispatchError> {
        if state.stream.is_none() {
            use std::net::ToSocketAddrs;
            let target = addr
                .to_socket_addrs()
                .map_err(|e| DispatchError::Connect(format!("bad address {addr}: {e}")))?
                .next()
                .ok_or_else(|| DispatchError::Connect(format!("unresolvable address {addr}")))?;
            let stream = TcpStream::connect_timeout(
                &target,
                Duration::from_millis(self.config.connect_timeout_ms.max(1)),
            )
            .map_err(|e| DispatchError::Connect(format!("connect {addr}: {e}")))?;
            stream
                .set_read_timeout(Some(REPLY_POLL))
                .map_err(|e| DispatchError::Connect(e.to_string()))?;
            stream
                .set_nodelay(true)
                .map_err(|e| DispatchError::Connect(e.to_string()))?;
            state.stream = Some(BufReader::new(stream));
        }
        let reader = state.stream.as_mut().expect("just connected");
        reader
            .get_mut()
            .write_all(format!("{}\n", WorkerRequest::Count(*request).to_json()).as_bytes())
            .map_err(|e| DispatchError::Io(format!("send: {e}")))?;
        let deadline = self
            .clock
            .now()
            .saturating_add(self.config.dispatch_timeout);
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Err(DispatchError::Io(String::from("connection closed"))),
                Ok(_) if line.ends_with('\n') => break,
                Ok(_) => {} // partial line; keep reading
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) => return Err(DispatchError::Io(format!("recv: {e}"))),
            }
            if self.clock.now() >= deadline {
                return Err(DispatchError::Deadline);
            }
        }
        match WorkerReply::from_json(line.trim()) {
            Ok(WorkerReply::Count {
                id,
                counts,
                p_partials,
            }) => {
                if id != request.id {
                    return Err(DispatchError::Corrupt(format!(
                        "reply id {id} for request {}",
                        request.id
                    )));
                }
                let count = request.count as usize;
                if p_partials.len() != count || counts.len() != self.counter.num_regions() * count {
                    return Err(DispatchError::Corrupt(String::from(
                        "reply dimensions disagree with the request span",
                    )));
                }
                Ok((counts, p_partials))
            }
            Ok(WorkerReply::Err { error, .. }) => Err(DispatchError::Remote(error)),
            Ok(_) => Err(DispatchError::Corrupt(String::from("unexpected reply op"))),
            Err(e) => Err(DispatchError::Corrupt(e.message)),
        }
    }
}

impl WorldEvaluator for DistributedEvaluator {
    fn eval_span(
        &self,
        class: WorldClass,
        eval_dirs: &[Direction],
        first: usize,
        out: &mut [f64],
        _fine: bool,
    ) {
        let count = out.len() / eval_dirs.len();
        if count == 0 {
            return;
        }
        // Fan the shard windows out; a window's partial is identical
        // whichever worker (or the local fallback) computed it, so the
        // reduce below is order- and schedule-independent.
        let shards = self.bounds.len();
        let partials: Vec<(Vec<u64>, Vec<u64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| scope.spawn(move || self.shard_partials(s, &class, first, count)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard dispatch threads do not panic"))
                .collect()
        });
        let regions = self.counter.num_regions();
        let mut counts = vec![0u64; regions * count];
        let mut p_worlds = vec![0u64; count];
        for (shard_counts, shard_p) in &partials {
            for (acc, &c) in counts.iter_mut().zip(shard_counts) {
                *acc += c;
            }
            for (acc, &p) in p_worlds.iter_mut().zip(shard_p) {
                *acc += p;
            }
        }
        self.stats.spans.fetch_add(shards as u64, Ordering::SeqCst);
        self.stats.worlds.fetch_add(count as u64, Ordering::SeqCst);
        self.counter.prepared().engine().fold_counts(
            class.statistic,
            &p_worlds,
            &counts,
            eval_dirs,
            out,
        );
    }
}
