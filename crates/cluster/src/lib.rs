//! k-means clustering substrate.
//!
//! The paper's §4.3 places scan-region centers at "the centers of a
//! k-means clustering of the observation locations" (100 centers for
//! LAR). This crate implements seeded, deterministic k-means with
//! k-means++ initialisation and Lloyd iterations.

//! # Example
//!
//! ```rust
//! use sfcluster::{KMeans, KMeansConfig};
//! use sfgeo::Point;
//!
//! let points: Vec<Point> = (0..100)
//!     .map(|i| Point::new((i % 2) as f64 * 10.0 + (i as f64) * 1e-3, 0.0))
//!     .collect();
//! let km = KMeans::fit(&points, &KMeansConfig::new(2, 42));
//! assert_eq!(km.k(), 2); // the two strands separate cleanly
//! assert!(km.inertia < 1.0);
//! ```

pub mod kmeans;

pub use kmeans::{KMeans, KMeansConfig};
