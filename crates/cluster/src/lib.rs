//! Clustering, in both senses.
//!
//! Historically this crate held the paper's §4.3 k-means substrate
//! (scan-region centers at "the centers of a k-means clustering of
//! the observation locations"; 100 centers for LAR) — seeded,
//! deterministic k-means++ with Lloyd iterations, still here as
//! [`KMeans`].
//!
//! It now also holds the *process* cluster: the distributed shard
//! service that spreads one audit's Monte Carlo world evaluation
//! across worker processes without changing a single output bit.
//!
//! - [`SpanCounter`] — the shared count kernel: exact integer
//!   region-count partials for a (world span × word window) rectangle.
//! - [`ShardWorker`] — a TCP worker serving count-partial requests
//!   over newline-delimited JSON, with deterministic [`FaultPlan`]
//!   injection for the robustness tests.
//! - [`DistributedEvaluator`] — the coordinator: a
//!   [`WorldEvaluator`](sfscan::prepared::WorldEvaluator) that
//!   partitions the label words across workers, re-dispatches failed
//!   shard spans (deadlines from an injected clock, capped exponential
//!   backoff, `Healthy → Suspect → Dead` worker health), degrades to
//!   local recomputation when no worker is live, and reduces the
//!   partials through the engine's own τ fold — bit-identical to the
//!   single-process engine by construction.
//!
//! # Example
//!
//! ```rust
//! use sfcluster::{KMeans, KMeansConfig};
//! use sfgeo::Point;
//!
//! let points: Vec<Point> = (0..100)
//!     .map(|i| Point::new((i % 2) as f64 * 10.0 + (i as f64) * 1e-3, 0.0))
//!     .collect();
//! let km = KMeans::fit(&points, &KMeansConfig::new(2, 42));
//! assert_eq!(km.k(), 2); // the two strands separate cleanly
//! assert!(km.inertia < 1.0);
//! ```

pub mod compute;
pub mod coordinator;
pub mod fault;
pub mod wire;
pub mod worker;

// The k-means substrate lives in `sfgeo` (it is pure geometry and the
// scan stack needs it below this crate in the dependency graph);
// re-exported here so `sfcluster::KMeans` callers keep compiling.
pub use sfgeo::kmeans;

pub use compute::{SpanCounter, SpanError, SpanPartials, SpanSpec};
pub use coordinator::{ClusterStats, CoordinatorConfig, DistributedEvaluator, WorkerHealth};
pub use fault::{FaultAction, FaultPlan, ParseFaultPlanError};
pub use kmeans::{KMeans, KMeansConfig};
pub use wire::{CountRequest, WorkerReply, WorkerRequest, WorkerStats, PROTOCOL_VERSION};
pub use worker::{ShardWorker, MAX_LINE_BYTES};
