//! The distributed bit-identity matrix: unsharded vs distributed vs
//! distributed-with-injected-faults must produce identical reports —
//! same τ, same p-values, same serialized bytes — across worldgens
//! and statistics, plus the failure-story contracts (re-dispatch,
//! health states, deadline misses, graceful degradation).

use proptest::prelude::*;
use sfcluster::{
    ClusterStats, CoordinatorConfig, CountRequest, DistributedEvaluator, FaultPlan, ShardWorker,
    SpanCounter, SpanSpec, WorkerHealth, WorkerReply, WorkerRequest,
};
use sfgeo::{Point, Rect};
use sfnet::{Clock, ManualClock, SystemClock};
use sfscan::prepared::{PreparedAudit, WorldClass, WorldEvaluator};
use sfscan::worldcache::WorldCache;
use sfscan::{
    AuditConfig, AuditReport, AuditRequest, CountingStrategy, Direction, NullModel, RegionSet,
    SpatialOutcomes, Statistic, WorldGen,
};
use std::str::FromStr;
use std::sync::Arc;

/// Deterministic unfair layout (both classes present, no degenerate
/// grid cell) — the same shape the statistic-equivalence suite pins.
fn outcomes(n: usize, seed: u64) -> SpatialOutcomes {
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
        let x = (h % 1000) as f64 / 100.0;
        let y = ((h >> 10) % 1000) as f64 / 100.0;
        points.push(Point::new(x, y));
        let five = h.is_multiple_of(5);
        labels.push(if x < 5.0 { !five } else { five });
    }
    SpatialOutcomes::new(points, labels).unwrap()
}

fn grid() -> RegionSet {
    RegionSet::regular_grid(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4, 4)
}

fn prepared(n: usize) -> Arc<PreparedAudit> {
    let base = AuditConfig::new(0.05)
        .with_worlds(60)
        .with_seed(11)
        .with_strategy(CountingStrategy::Blocked);
    Arc::new(PreparedAudit::prepare(&outcomes(n, 3), &grid(), base).unwrap())
}

/// The request matrix the bit-identity tests replay: both worldgens,
/// two extra statistics, both null models, a direction variant.
fn request_matrix() -> Vec<AuditRequest> {
    let r = AuditRequest::new(0.05).with_worlds(60).with_seed(1);
    vec![
        r,
        r.with_worldgen(WorldGen::Scalar),
        r.with_statistic(Statistic::EqualOppTpr),
        r.with_statistic(Statistic::MeanResidual),
        r.with_null_model(NullModel::Permutation),
        r.with_direction(Direction::High).with_seed(2),
    ]
}

/// Spawns `n` workers sharing one engine, each with its own fault
/// plan (`plans[i]`; missing entries mean no faults).
fn spawn_workers(prepared: &Arc<PreparedAudit>, n: usize, plans: &[&str]) -> Vec<ShardWorker> {
    (0..n)
        .map(|i| {
            let counter = Arc::new(SpanCounter::new(prepared.clone()).unwrap());
            let plan = Arc::new(FaultPlan::from_str(plans.get(i).copied().unwrap_or("")).unwrap());
            ShardWorker::bind("127.0.0.1:0", counter, plan).unwrap()
        })
        .collect()
}

fn evaluator(
    prepared: &Arc<PreparedAudit>,
    workers: &[ShardWorker],
    config: CoordinatorConfig,
) -> DistributedEvaluator {
    let addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    DistributedEvaluator::new(
        prepared.clone(),
        &addrs,
        config,
        Arc::new(SystemClock::new()),
    )
    .unwrap()
}

fn render(reports: &[AuditReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect()
}

/// Runs the matrix through a distributed evaluator and asserts the
/// rendered reports equal the unsharded reference byte for byte.
/// Returns the coordinator's stats for failure-story assertions.
fn assert_bit_identical(
    prepared: &Arc<PreparedAudit>,
    workers: &[ShardWorker],
    config: CoordinatorConfig,
) -> ClusterStats {
    let requests = request_matrix();
    let reference = render(&prepared.run_batch(&requests));
    let eval = evaluator(prepared, workers, config);
    let mut cache = WorldCache::new();
    let (reports, _) = prepared.run_batch_cached_with(&requests, &mut cache, Some(&eval));
    assert_eq!(render(&reports), reference, "distributed τ/p-value drift");
    eval.stats()
}

#[test]
fn healthy_cluster_is_bit_identical_across_worldgens_and_statistics() {
    let prepared = prepared(1500);
    for n in [1usize, 3] {
        let workers = spawn_workers(&prepared, n, &[]);
        let stats = assert_bit_identical(&prepared, &workers, CoordinatorConfig::default());
        assert!(stats.completed_remote > 0, "no spans went over the wire");
        assert_eq!(stats.redispatches, 0);
        assert_eq!(stats.degraded_local_spans, 0);
    }
}

#[test]
fn killed_worker_is_bit_identical_and_routed_around() {
    let prepared = prepared(1500);
    // Worker 0 dies after 3 requests; its spans re-dispatch to the
    // survivors (or degrade locally) with identical bytes.
    let workers = spawn_workers(&prepared, 3, &["kill-after=3"]);
    let config = CoordinatorConfig {
        connect_timeout_ms: 200,
        backoff_base_ms: 1,
        ..CoordinatorConfig::default()
    };
    let stats = assert_bit_identical(&prepared, &workers, config);
    assert!(workers[0].is_killed());
    assert!(
        stats.redispatches > 0 || stats.degraded_local_spans > 0,
        "the kill fault never forced a recovery: {stats:?}"
    );
}

#[test]
fn dropped_connections_and_corrupt_replies_are_bit_identical() {
    let prepared = prepared(1500);
    let workers = spawn_workers(
        &prepared,
        3,
        &["drop-at=2,drop-at=5", "corrupt-at=1,corrupt-at=4"],
    );
    let config = CoordinatorConfig {
        backoff_base_ms: 1,
        ..CoordinatorConfig::default()
    };
    let stats = assert_bit_identical(&prepared, &workers, config);
    assert!(stats.conn_errors > 0, "drops never observed: {stats:?}");
    assert!(
        stats.corrupt_replies > 0,
        "corruption never observed: {stats:?}"
    );
    assert!(stats.redispatches > 0);
}

#[test]
fn injected_delays_miss_deadlines_and_still_bit_identical() {
    let prepared = prepared(1500);
    // Worker 0 delays every reply past the 50 ms dispatch deadline.
    let workers = spawn_workers(&prepared, 2, &["delay-every=1:400"]);
    let config = CoordinatorConfig {
        dispatch_timeout: 50_000, // µs under SystemClock
        backoff_base_ms: 1,
        ..CoordinatorConfig::default()
    };
    let stats = assert_bit_identical(&prepared, &workers, config);
    assert!(stats.deadline_misses > 0, "no deadline fired: {stats:?}");
}

#[test]
fn no_live_workers_degrades_to_local_and_stays_bit_identical() {
    let prepared = prepared(1200);
    // Point at a bound-then-dropped port: every connect fails fast.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let requests = request_matrix();
    let reference = render(&prepared.run_batch(&requests));
    let eval = DistributedEvaluator::new(
        prepared.clone(),
        &[dead_addr],
        CoordinatorConfig {
            connect_timeout_ms: 50,
            backoff_base_ms: 1,
            dead_after: 2,
            ..CoordinatorConfig::default()
        },
        Arc::new(SystemClock::new()),
    )
    .unwrap();
    let mut cache = WorldCache::new();
    let (reports, _) = prepared.run_batch_cached_with(&requests, &mut cache, Some(&eval));
    assert_eq!(render(&reports), reference);
    let stats = eval.stats();
    assert!(stats.degraded_local_spans > 0, "never degraded: {stats:?}");
    assert_eq!(eval.worker_health(0), WorkerHealth::Dead);
    assert!(eval.worker_last_error(0).is_some());
}

#[test]
fn health_walks_healthy_suspect_dead() {
    let prepared = prepared(800);
    let workers = spawn_workers(&prepared, 1, &[]);
    let addr = workers[0].local_addr().to_string();
    drop(workers); // sever: every dispatch now fails
    let eval = DistributedEvaluator::new(
        prepared.clone(),
        &[addr],
        CoordinatorConfig {
            connect_timeout_ms: 50,
            backoff_base_ms: 1,
            max_attempts: 1,
            dead_after: 2,
            ..CoordinatorConfig::default()
        },
        Arc::new(SystemClock::new()),
    )
    .unwrap();
    assert_eq!(eval.worker_health(0), WorkerHealth::Healthy);
    let class = WorldClass {
        null_model: NullModel::Bernoulli,
        seed: 1,
        worldgen: WorldGen::Word,
        statistic: Statistic::BernoulliLlr,
    };
    let dirs = [Direction::TwoSided];
    let mut out = vec![0.0; 4];
    eval.eval_span(class, &dirs, 0, &mut out, false);
    assert_eq!(eval.worker_health(0), WorkerHealth::Suspect);
    eval.eval_span(class, &dirs, 4, &mut out, false);
    assert_eq!(eval.worker_health(0), WorkerHealth::Dead);
}

#[test]
fn manual_clock_controls_the_deadline() {
    let prepared = prepared(800);
    // A worker that exists but never answers in time is simulated by
    // binding a listener that accepts and stays silent.
    let silent = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = silent.local_addr().unwrap().to_string();
    let clock = Arc::new(ManualClock::new());
    let eval = DistributedEvaluator::new(
        prepared.clone(),
        &[addr],
        CoordinatorConfig {
            dispatch_timeout: 1_000,
            connect_timeout_ms: 200,
            backoff_base_ms: 0,
            max_attempts: 1,
            ..CoordinatorConfig::default()
        },
        clock.clone() as Arc<dyn Clock>,
    )
    .unwrap();
    // Expire the deadline from another thread while eval_span blocks
    // on the silent socket.
    let ticker = {
        let clock = clock.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                clock.advance(500);
            }
        })
    };
    let class = WorldClass {
        null_model: NullModel::Bernoulli,
        seed: 1,
        worldgen: WorldGen::Word,
        statistic: Statistic::BernoulliLlr,
    };
    let mut out = vec![0.0; 2];
    eval.eval_span(class, &[Direction::TwoSided], 0, &mut out, false);
    ticker.join().unwrap();
    let stats = eval.stats();
    assert!(
        stats.deadline_misses > 0,
        "manual deadline never fired: {stats:?}"
    );
    assert_eq!(stats.degraded_local_spans, 1);
}

#[test]
fn wire_round_trips() {
    let requests = [
        WorkerRequest::Hello,
        WorkerRequest::Stats,
        WorkerRequest::Shutdown,
        WorkerRequest::Count(CountRequest {
            id: 7,
            null_model: NullModel::Permutation,
            seed: 42,
            worldgen: WorldGen::Scalar,
            first: 8,
            count: 4,
            word_lo: 16,
            word_hi: 64,
        }),
    ];
    for request in &requests {
        let back = WorkerRequest::from_json(&request.to_json()).unwrap();
        assert_eq!(&back, request);
    }
    let replies = [
        WorkerReply::Hello {
            version: 1,
            num_points: 100,
            num_regions: 16,
            num_words: 2,
        },
        WorkerReply::Count {
            id: 7,
            counts: vec![1, 2, 3, 4],
            p_partials: vec![9, 9],
        },
        WorkerReply::Err {
            id: Some(7),
            error: String::from("boom"),
        },
        WorkerReply::Err {
            id: None,
            error: String::from("malformed"),
        },
    ];
    for reply in &replies {
        let back = WorkerReply::from_json(&reply.to_json()).unwrap();
        assert_eq!(&back, reply);
    }
}

#[test]
fn fault_plan_grammar() {
    let plan = FaultPlan::from_str("kill-after=3,delay-at=2:50,drop-at=1,corrupt-at=4").unwrap();
    let a1 = plan.next_request();
    assert!(a1.drop_connection && !a1.kill_after);
    let a2 = plan.next_request();
    assert_eq!(a2.delay_ms, 50);
    let a3 = plan.next_request();
    assert!(a3.kill_after);
    let a4 = plan.next_request();
    assert!(a4.corrupt_reply && a4.kill_after); // kill-after is sticky
    assert_eq!(plan.served(), 4);

    assert!(FaultPlan::from_str("").unwrap().is_empty());
    for bad in [
        "nope",
        "kill-after",
        "kill-after=x",
        "delay-at=3",
        "delay-every=0:5",
    ] {
        assert!(FaultPlan::from_str(bad).is_err(), "accepted `{bad}`");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Window partials over any word partition sum to the full-axis
    /// counts — the invariant the coordinator's reduction rests on.
    #[test]
    fn span_partials_sum_over_any_partition(
        shards in 1usize..6,
        seed in 0u64..50,
        first in 0usize..40,
        count in 1usize..6,
        worldgen_word in any::<bool>(),
        permutation in any::<bool>(),
    ) {
        let prepared = prepared(700);
        let counter = SpanCounter::new(prepared.clone()).unwrap();
        let num_words = counter.num_label_words();
        let worldgen = if worldgen_word { WorldGen::Word } else { WorldGen::Scalar };
        let null_model = if permutation { NullModel::Permutation } else { NullModel::Bernoulli };
        let full = counter
            .count_span(SpanSpec { null_model, worldgen, seed, first, count, word_lo: 0, word_hi: num_words })
            .unwrap();
        let bounds = sfindex::shard_word_bounds(num_words, shards);
        let mut counts = vec![0u64; full.counts.len()];
        let mut p = vec![0u64; count];
        for &(lo, hi) in &bounds {
            let part = counter
                .count_span(SpanSpec { null_model, worldgen, seed, first, count, word_lo: lo, word_hi: hi })
                .unwrap();
            for (acc, &c) in counts.iter_mut().zip(&part.counts) {
                *acc += c;
            }
            for (acc, &c) in p.iter_mut().zip(&part.p_partials) {
                *acc += c;
            }
        }
        prop_assert_eq!(counts, full.counts);
        prop_assert_eq!(p, full.p_partials);
    }
}
