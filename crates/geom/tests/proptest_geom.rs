//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use sfgeo::{BoundingBox, Circle, Partitioning, Point, Rect, UniformGrid};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000.0..1000.0f64, -1000.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::new(a, b))
}

proptest! {
    #[test]
    fn rect_new_maintains_invariant(a in arb_point(), b in arb_point()) {
        let r = Rect::new(a, b);
        prop_assert!(r.min.x <= r.max.x);
        prop_assert!(r.min.y <= r.max.y);
    }

    #[test]
    fn rect_contains_center(r in arb_rect()) {
        prop_assert!(r.contains(&r.center()));
    }

    #[test]
    fn rect_intersection_is_commutative_and_contained(a in arb_rect(), b in arb_rect()) {
        let i1 = a.intersection(&b);
        let i2 = b.intersection(&a);
        prop_assert_eq!(i1, i2);
        if let Some(i) = i1 {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn rect_intersects_iff_intersection_exists(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
    }

    #[test]
    fn distance_to_point_zero_iff_contained(r in arb_rect(), p in arb_point()) {
        let d = r.distance_sq_to_point(&p);
        prop_assert_eq!(d == 0.0, r.contains(&p));
        prop_assert!(d >= 0.0);
    }

    #[test]
    fn circle_bounding_rect_contains_contained_points(
        c in (arb_point(), 0.0..100.0f64).prop_map(|(p, r)| Circle::new(p, r)),
        p in arb_point(),
    ) {
        if c.contains(&p) {
            prop_assert!(c.bounding_rect().contains(&p));
        }
    }

    #[test]
    fn bbox_contains_all_points(pts in prop::collection::vec(arb_point(), 1..50)) {
        let r = BoundingBox::of_points(&pts).unwrap();
        for p in &pts {
            prop_assert!(r.contains(p));
        }
    }

    #[test]
    fn grid_cell_of_roundtrips_for_interior_points(
        nx in 1usize..20,
        ny in 1usize..20,
        fx in 0.0..1.0f64,
        fy in 0.0..1.0f64,
    ) {
        let bounds = Rect::from_coords(-5.0, -5.0, 5.0, 5.0);
        let g = UniformGrid::new(bounds, nx, ny);
        let p = Point::new(
            bounds.min.x + fx * bounds.width() * 0.999999,
            bounds.min.y + fy * bounds.height() * 0.999999,
        );
        let (ix, iy) = g.cell_of(&p);
        prop_assert!(ix < nx && iy < ny);
        // The cell rect must contain the point (closed boundary caveat:
        // interior points by construction).
        let r = g.cell_rect(ix, iy);
        prop_assert!(r.contains(&p), "cell {:?} rect {} missing {}", (ix, iy), r, p);
    }

    #[test]
    fn partitioning_assignment_is_consistent_with_rects(
        xs in prop::collection::vec(0.001..0.999f64, 0..10),
        ys in prop::collection::vec(0.001..0.999f64, 0..10),
        pts in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..50),
    ) {
        let bounds = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let part = Partitioning::from_splits(bounds, xs, ys);
        for (x, y) in pts {
            let p = Point::new(x, y);
            let id = part.partition_of(&p);
            prop_assert!(id < part.num_partitions());
            let r = part.partition_rect(id);
            // The assigned partition's closed rect must contain the point.
            prop_assert!(r.contains(&p), "partition {id} rect {r} missing {p}");
        }
    }

    #[test]
    fn partitioning_partitions_are_disjoint_in_interiors(
        xs in prop::collection::vec(0.001..0.999f64, 0..6),
        ys in prop::collection::vec(0.001..0.999f64, 0..6),
    ) {
        let bounds = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let part = Partitioning::from_splits(bounds, xs, ys);
        let rects: Vec<Rect> = part.iter_partitions().map(|(_, r)| r).collect();
        // Interiors are pairwise disjoint: any intersection has zero area.
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                if let Some(ov) = rects[i].intersection(&rects[j]) {
                    prop_assert!(ov.area() < 1e-12);
                }
            }
        }
        // And areas sum to the bounds area (coverage).
        let total: f64 = rects.iter().map(|r| r.area()).sum();
        prop_assert!((total - bounds.area()).abs() < 1e-9);
    }
}
