//! Convex polygon regions.
//!
//! The paper's §1 lists "city blocks, zipcodes, districts" as the
//! spatial units a naive audit would compare. Districts are rarely
//! rectangles; this module adds convex polygons as first-class scan
//! regions so audits can use administrative-style shapes directly
//! (an extension; arbitrary simple polygons can be approximated by
//! convex pieces).
//!
//! Containment is closed (boundary points belong to the polygon), and
//! rectangle intersection uses the exact separating-axis test, so all
//! index pruning guarantees carry over.

use crate::{point::Point, rect::Rect};
use serde::{Deserialize, Serialize};

/// A convex polygon with vertices stored in counter-clockwise order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Creates a convex polygon from at least three vertices.
    ///
    /// Vertices may be given in either orientation; they are stored
    /// counter-clockwise.
    ///
    /// # Panics
    /// Panics if fewer than three vertices are given, any coordinate is
    /// non-finite, or the vertex sequence is not strictly convex
    /// (collinear triples are rejected to keep the orientation tests
    /// exact).
    pub fn new(mut vertices: Vec<Point>) -> Self {
        assert!(
            vertices.len() >= 3,
            "a polygon needs at least three vertices"
        );
        assert!(
            vertices.iter().all(Point::is_finite),
            "polygon vertices must be finite"
        );
        // Signed area: positive = CCW.
        let area2: f64 = signed_area2(&vertices);
        assert!(area2.abs() > 0.0, "polygon must have positive area");
        if area2 < 0.0 {
            vertices.reverse();
        }
        // Strict convexity: every consecutive triple turns left.
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let c = vertices[(i + 2) % n];
            assert!(
                cross(&a, &b, &c) > 0.0,
                "vertices must form a strictly convex CCW polygon (violation at index {i})"
            );
        }
        ConvexPolygon { vertices }
    }

    /// Axis-aligned regular approximation of a circle: an `n`-gon
    /// inscribed in the circle of the given center and radius.
    pub fn regular(center: Point, radius: f64, n: usize) -> Self {
        assert!(n >= 3, "need at least three vertices");
        assert!(radius > 0.0, "radius must be positive");
        let vertices = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                )
            })
            .collect();
        ConvexPolygon { vertices }
    }

    /// The vertices (counter-clockwise).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Closed containment test: the point is inside or on the boundary.
    pub fn contains(&self, p: &Point) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if cross(&a, &b, p) < 0.0 {
                return false;
            }
        }
        true
    }

    /// The tightest axis-aligned bounding rectangle.
    pub fn bounding_rect(&self) -> Rect {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices[1..] {
            min = min.min(v);
            max = max.max(v);
        }
        Rect { min, max }
    }

    /// Returns `true` if the rectangle lies entirely inside the polygon
    /// (all four corners inside — exact for convex shapes).
    pub fn contains_rect(&self, r: &Rect) -> bool {
        self.contains(&r.min)
            && self.contains(&r.max)
            && self.contains(&Point::new(r.min.x, r.max.y))
            && self.contains(&Point::new(r.max.x, r.min.y))
    }

    /// Exact convex-polygon / rectangle intersection via the separating
    /// axis theorem (closed semantics: touching shapes intersect).
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        // Rect axes: x and y.
        let (poly_min_x, poly_max_x) = self.project(1.0, 0.0);
        if poly_max_x < r.min.x || r.max.x < poly_min_x {
            return false;
        }
        let (poly_min_y, poly_max_y) = self.project(0.0, 1.0);
        if poly_max_y < r.min.y || r.max.y < poly_min_y {
            return false;
        }
        // Polygon edge normals.
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            // Outward normal of CCW edge (a -> b): (dy, -dx).
            let nx = b.y - a.y;
            let ny = a.x - b.x;
            let (p_min, p_max) = self.project(nx, ny);
            let (r_min, r_max) = project_rect(r, nx, ny);
            if p_max < r_min || r_max < p_min {
                return false;
            }
        }
        true
    }

    /// Area of the polygon (shoelace formula).
    pub fn area(&self) -> f64 {
        signed_area2(&self.vertices) / 2.0
    }

    /// Centroid of the polygon.
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a2 = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a2 += w;
        }
        Point::new(cx / (3.0 * a2), cy / (3.0 * a2))
    }

    /// Projects the polygon onto the axis `(ax, ay)`.
    fn project(&self, ax: f64, ay: f64) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in &self.vertices {
            let d = v.x * ax + v.y * ay;
            lo = lo.min(d);
            hi = hi.max(d);
        }
        (lo, hi)
    }
}

impl std::fmt::Display for ConvexPolygon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "polygon[{} vertices around {}]",
            self.vertices.len(),
            self.centroid()
        )
    }
}

fn project_rect(r: &Rect, ax: f64, ay: f64) -> (f64, f64) {
    let corners = [
        Point::new(r.min.x, r.min.y),
        Point::new(r.max.x, r.min.y),
        Point::new(r.min.x, r.max.y),
        Point::new(r.max.x, r.max.y),
    ];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for c in corners {
        let d = c.x * ax + c.y * ay;
        lo = lo.min(d);
        hi = hi.max(d);
    }
    (lo, hi)
}

/// Twice the signed area (positive for CCW).
fn signed_area2(vertices: &[Point]) -> f64 {
    let n = vertices.len();
    let mut acc = 0.0;
    for i in 0..n {
        let p = vertices[i];
        let q = vertices[(i + 1) % n];
        acc += p.x * q.y - q.x * p.y;
    }
    acc
}

/// Cross product of (b-a) x (p-a).
#[inline]
fn cross(a: &Point, b: &Point, p: &Point) -> f64 {
    (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ConvexPolygon {
        ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
        ])
    }

    fn square() -> ConvexPolygon {
        ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ])
    }

    #[test]
    fn orientation_is_normalised() {
        // Clockwise input is reversed to CCW: same shape (possibly a
        // rotated vertex cycle), positive area, identical geometry.
        let cw = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 3.0),
            Point::new(4.0, 0.0),
        ]);
        let ccw = triangle();
        assert!(cw.area() > 0.0);
        assert!((cw.area() - ccw.area()).abs() < 1e-12);
        assert_eq!(cw.bounding_rect(), ccw.bounding_rect());
        assert_eq!(cw.centroid(), ccw.centroid());
        // Every vertex of one appears in the other.
        for v in cw.vertices() {
            assert!(ccw.vertices().contains(v));
        }
    }

    #[test]
    #[should_panic(expected = "strictly convex")]
    fn concave_polygon_rejected() {
        let _ = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 1.0), // dent
            Point::new(0.0, 4.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn too_few_vertices_rejected() {
        let _ = ConvexPolygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
    }

    #[test]
    fn contains_is_closed() {
        let t = triangle();
        assert!(t.contains(&Point::new(2.0, 1.0))); // interior
        assert!(t.contains(&Point::new(0.0, 0.0))); // vertex
        assert!(t.contains(&Point::new(2.0, 0.0))); // edge
        assert!(!t.contains(&Point::new(2.0, 3.1)));
        assert!(!t.contains(&Point::new(-0.1, 0.0)));
    }

    #[test]
    fn bounding_rect_is_tight() {
        assert_eq!(
            triangle().bounding_rect(),
            Rect::from_coords(0.0, 0.0, 4.0, 3.0)
        );
    }

    #[test]
    fn area_and_centroid() {
        assert!((triangle().area() - 6.0).abs() < 1e-12);
        assert!((square().area() - 4.0).abs() < 1e-12);
        let c = square().centroid();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contains_rect_cases() {
        let s = square();
        assert!(s.contains_rect(&Rect::from_coords(0.5, 0.5, 1.5, 1.5)));
        assert!(s.contains_rect(&Rect::from_coords(0.0, 0.0, 2.0, 2.0))); // the square itself
        assert!(!s.contains_rect(&Rect::from_coords(1.5, 1.5, 2.5, 2.5)));
        // A rect whose corners are inside a triangle is inside (convexity).
        let t = triangle();
        assert!(t.contains_rect(&Rect::from_coords(1.5, 0.5, 2.5, 1.0)));
    }

    #[test]
    fn sat_intersection_exact() {
        let t = triangle();
        // Overlapping.
        assert!(t.intersects_rect(&Rect::from_coords(1.0, 1.0, 3.0, 2.0)));
        // Rect overlaps the bounding box but NOT the triangle (top-left
        // corner area above the left edge).
        assert!(!t.intersects_rect(&Rect::from_coords(0.0, 2.5, 0.6, 3.0)));
        // Touching a vertex counts (closed).
        assert!(t.intersects_rect(&Rect::from_coords(4.0, 0.0, 5.0, 1.0)));
        // Fully disjoint.
        assert!(!t.intersects_rect(&Rect::from_coords(10.0, 10.0, 11.0, 11.0)));
        // Rect fully containing the polygon intersects.
        assert!(t.intersects_rect(&Rect::from_coords(-1.0, -1.0, 5.0, 4.0)));
    }

    #[test]
    fn regular_polygon_approximates_circle() {
        let p = ConvexPolygon::regular(Point::new(1.0, 1.0), 2.0, 64);
        assert_eq!(p.vertices().len(), 64);
        // Area approaches pi r^2 from below.
        let circle_area = std::f64::consts::PI * 4.0;
        assert!(p.area() < circle_area);
        assert!(p.area() > circle_area * 0.99);
        let c = p.centroid();
        assert!((c.x - 1.0).abs() < 1e-9 && (c.y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consistency_contains_implies_intersects() {
        let t = triangle();
        let r = Rect::from_coords(1.8, 0.5, 2.2, 0.9);
        if t.contains_rect(&r) {
            assert!(t.intersects_rect(&r));
        }
    }
}
