//! Scan-region shapes.

use crate::{circle::Circle, point::Point, polygon::ConvexPolygon, rect::Rect};
use serde::{Deserialize, Serialize};

/// A scan region: one of the supported shapes.
///
/// The paper's notation calls this `R`. Grid partitions and the §4.3
/// square regions are [`Region::Rect`]; [`Region::Circle`] is the
/// Kulldorff-style extension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Region {
    /// An axis-aligned rectangle.
    Rect(Rect),
    /// A circle.
    Circle(Circle),
    /// A convex polygon (district-style shapes; extension).
    Polygon(ConvexPolygon),
}

impl Region {
    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        match self {
            Region::Rect(r) => r.contains(p),
            Region::Circle(c) => c.contains(p),
            Region::Polygon(poly) => poly.contains(p),
        }
    }

    /// The tightest axis-aligned rectangle covering the region.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        match self {
            Region::Rect(r) => *r,
            Region::Circle(c) => c.bounding_rect(),
            Region::Polygon(poly) => poly.bounding_rect(),
        }
    }

    /// Returns `true` if the axis-aligned rectangle `r` lies entirely
    /// inside the region (used by indexes to prune subtree scans).
    #[inline]
    pub fn contains_rect(&self, r: &Rect) -> bool {
        match self {
            Region::Rect(me) => me.contains_rect(r),
            Region::Circle(me) => me.contains_rect(r),
            Region::Polygon(me) => me.contains_rect(r),
        }
    }

    /// Returns `true` if the axis-aligned rectangle `r` intersects the
    /// region.
    #[inline]
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        match self {
            Region::Rect(me) => me.intersects(r),
            Region::Circle(me) => me.intersects_rect(r),
            Region::Polygon(me) => me.intersects_rect(r),
        }
    }

    /// Conservative region-region overlap test via shape-specific
    /// geometry where available, bounding boxes otherwise.
    ///
    /// Used by the non-overlapping evidence selection of §4.3; a
    /// conservative (may-overlap) answer keeps that selection sound.
    pub fn may_intersect(&self, other: &Region) -> bool {
        match (self, other) {
            (Region::Rect(a), Region::Rect(b)) => a.intersects(b),
            (Region::Circle(a), Region::Circle(b)) => a.intersects(b),
            (Region::Rect(r), Region::Circle(c)) | (Region::Circle(c), Region::Rect(r)) => {
                c.intersects_rect(r)
            }
            (Region::Polygon(p), Region::Rect(r)) | (Region::Rect(r), Region::Polygon(p)) => {
                p.intersects_rect(r)
            }
            // Polygon/circle and polygon/polygon: conservative bounding
            // boxes (sound for the non-overlap selection, which only
            // needs may-overlap).
            (a, b) => a.bounding_rect().intersects(&b.bounding_rect()),
        }
    }

    /// Geometric center of the region.
    #[inline]
    pub fn center(&self) -> Point {
        match self {
            Region::Rect(r) => r.center(),
            Region::Circle(c) => c.center,
            Region::Polygon(p) => p.centroid(),
        }
    }

    /// Area of the region.
    #[inline]
    pub fn area(&self) -> f64 {
        match self {
            Region::Rect(r) => r.area(),
            Region::Circle(c) => c.area(),
            Region::Polygon(p) => p.area(),
        }
    }
}

impl From<Rect> for Region {
    fn from(r: Rect) -> Self {
        Region::Rect(r)
    }
}

impl From<Circle> for Region {
    fn from(c: Circle) -> Self {
        Region::Circle(c)
    }
}

impl From<ConvexPolygon> for Region {
    fn from(p: ConvexPolygon) -> Self {
        Region::Polygon(p)
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Rect(r) => write!(f, "{r}"),
            Region::Circle(c) => write!(f, "{c}"),
            Region::Polygon(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_region_delegates() {
        let r: Region = Rect::from_coords(0.0, 0.0, 1.0, 1.0).into();
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(!r.contains(&Point::new(2.0, 0.5)));
        assert_eq!(r.bounding_rect(), Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        assert_eq!(r.center(), Point::new(0.5, 0.5));
    }

    #[test]
    fn circle_region_delegates() {
        let c: Region = Circle::new(Point::ORIGIN, 1.0).into();
        assert!(c.contains(&Point::new(0.0, 1.0)));
        assert!(!c.contains(&Point::new(1.0, 1.0))); // outside the circle
        assert_eq!(c.bounding_rect(), Rect::from_coords(-1.0, -1.0, 1.0, 1.0));
    }

    #[test]
    fn mixed_intersection_circle_rect() {
        let c: Region = Circle::new(Point::ORIGIN, 1.0).into();
        let r: Region = Rect::from_coords(0.9, -0.1, 2.0, 0.1).into();
        assert!(c.may_intersect(&r));
        assert!(r.may_intersect(&c));
        let far: Region = Rect::from_coords(5.0, 5.0, 6.0, 6.0).into();
        assert!(!c.may_intersect(&far));
    }

    #[test]
    fn circle_bbox_overlaps_but_circle_does_not() {
        // Rect touches the circle's bounding box corner but not the
        // circle itself; the circle-rect test must be exact.
        let c: Region = Circle::new(Point::ORIGIN, 1.0).into();
        let corner: Region = Rect::from_coords(0.9, 0.9, 1.0, 1.0).into();
        assert!(!c.may_intersect(&corner));
    }

    #[test]
    fn contains_rect_pruning_contract() {
        let c: Region = Circle::new(Point::ORIGIN, 2.0).into();
        let inner = Rect::from_coords(-0.5, -0.5, 0.5, 0.5);
        assert!(c.contains_rect(&inner));
        // Everything the region fully contains must also intersect it.
        assert!(c.intersects_rect(&inner));
    }

    #[test]
    fn area_dispatch() {
        let r: Region = Rect::from_coords(0.0, 0.0, 2.0, 3.0).into();
        assert_eq!(r.area(), 6.0);
        let c: Region = Circle::new(Point::ORIGIN, 1.0).into();
        assert!((c.area() - std::f64::consts::PI).abs() < 1e-12);
    }
}
