//! 2-D points.

use serde::{Deserialize, Serialize};

/// A point in the plane.
///
/// By convention in this workspace `x` is longitude and `y` is latitude
/// (degrees), matching the paper's datasets, but all geometry is plain
/// Euclidean unless [`crate::haversine`] is used explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (longitude when geographic).
    pub x: f64,
    /// Vertical coordinate (latitude when geographic).
    pub y: f64,
}

impl Point {
    /// Creates a new point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::distance`] in hot loops and when only
    /// comparisons are needed (it avoids the square root).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Component-wise midpoint.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(4.0, -3.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(7.25, -2.5);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 10.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.midpoint(&b), Point::new(5.0, 5.0));
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let p = Point::new(1.5, -2.5);
        let t: (f64, f64) = p.into();
        assert_eq!(Point::from(t), p);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max(&b), Point::new(2.0, 5.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(0.0, 0.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1.0000, 2.0000)");
    }
}
