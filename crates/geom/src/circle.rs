//! Circular scan regions.

use crate::{point::Point, rect::Rect};
use serde::{Deserialize, Serialize};

/// A circle, used as an alternative scan-region shape.
///
/// The paper scans squares (§4.3); circles are the classic Kulldorff
/// scan shape and are provided as an extension (see DESIGN.md §6).
/// Containment is closed: points on the circumference belong to the
/// circle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius (must be non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a new circle.
    ///
    /// # Panics
    /// Panics if `radius` is negative or non-finite.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// The tightest axis-aligned rectangle covering the circle.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect {
            min: Point::new(self.center.x - self.radius, self.center.y - self.radius),
            max: Point::new(self.center.x + self.radius, self.center.y + self.radius),
        }
    }

    /// Returns `true` if the rectangle `r` lies entirely inside the circle.
    #[inline]
    pub fn contains_rect(&self, r: &Rect) -> bool {
        r.max_distance_sq_to_point(&self.center) <= self.radius * self.radius
    }

    /// Returns `true` if the rectangle `r` intersects the circle.
    #[inline]
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        r.distance_sq_to_point(&self.center) <= self.radius * self.radius
    }

    /// Returns `true` if two circles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_sq(&other.center) <= r * r
    }

    /// Circle area `πr²`.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }
}

impl std::fmt::Display for Circle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "circle(center={}, r={:.4})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_closed() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!(c.contains(&Point::new(1.0, 0.0)));
        assert!(c.contains(&Point::new(0.0, 0.0)));
        assert!(!c.contains(&Point::new(1.0 + 1e-9, 0.0)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_rejected() {
        let _ = Circle::new(Point::ORIGIN, -0.1);
    }

    #[test]
    fn bounding_rect_is_tight() {
        let c = Circle::new(Point::new(1.0, 2.0), 0.5);
        let r = c.bounding_rect();
        assert_eq!(r, Rect::from_coords(0.5, 1.5, 1.5, 2.5));
    }

    #[test]
    fn rect_containment_and_intersection() {
        let c = Circle::new(Point::ORIGIN, 2.0);
        // A small rect near the center is fully inside.
        assert!(c.contains_rect(&Rect::from_coords(-0.5, -0.5, 0.5, 0.5)));
        // A rect crossing the rim intersects but is not contained.
        let rim = Rect::from_coords(1.5, -0.5, 2.5, 0.5);
        assert!(c.intersects_rect(&rim));
        assert!(!c.contains_rect(&rim));
        // A far-away rect does not intersect.
        assert!(!c.intersects_rect(&Rect::from_coords(5.0, 5.0, 6.0, 6.0)));
    }

    #[test]
    fn circle_circle_intersection() {
        let a = Circle::new(Point::ORIGIN, 1.0);
        let b = Circle::new(Point::new(2.0, 0.0), 1.0); // touching
        assert!(a.intersects(&b));
        let c = Circle::new(Point::new(2.1, 0.0), 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn zero_radius_circle_is_a_point() {
        let c = Circle::new(Point::new(3.0, 3.0), 0.0);
        assert!(c.contains(&Point::new(3.0, 3.0)));
        assert!(!c.contains(&Point::new(3.0, 3.000001)));
        assert_eq!(c.area(), 0.0);
    }
}
