//! Rectangular partitionings of space.
//!
//! A *partitioning* (paper §1, footnote 2) is a set of non-overlapping
//! regions that collectively cover the space. The `MeanVar` baseline
//! (Xie et al., AAAI 2022) evaluates the variance of a fairness measure
//! over the partitions of many rectangular partitionings; the paper's
//! §4.2 uses 100 random partitionings whose number of horizontal and
//! vertical splits is drawn uniformly from 10–40.

use crate::{point::Point, rect::Rect};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A rectangular partitioning defined by sorted interior split
/// coordinates on each axis.
///
/// With `k` interior x-splits and `m` interior y-splits the space is
/// divided into `(k+1) × (m+1)` partitions. Points map to exactly one
/// partition: the x-interval `[x_i, x_{i+1})` and y-interval
/// `[y_j, y_{j+1})` they fall in, with points outside the bounds clamped
/// to the border partitions (so coverage is total, as the definition
/// requires).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioning {
    bounds: Rect,
    /// Sorted interior split x-coordinates (strictly inside the bounds).
    xsplits: Vec<f64>,
    /// Sorted interior split y-coordinates (strictly inside the bounds).
    ysplits: Vec<f64>,
}

impl Partitioning {
    /// Creates a partitioning from explicit interior splits.
    ///
    /// Splits are sorted and deduplicated; splits outside the open
    /// interval of the bounds are rejected.
    ///
    /// # Panics
    /// Panics if any split lies outside the open bounds interval, or the
    /// bounds are degenerate.
    pub fn from_splits(bounds: Rect, mut xsplits: Vec<f64>, mut ysplits: Vec<f64>) -> Self {
        assert!(
            bounds.width() > 0.0 && bounds.height() > 0.0,
            "partitioning bounds must have positive extent"
        );
        let sort_dedup = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("split coordinates must not be NaN"));
            v.dedup();
        };
        sort_dedup(&mut xsplits);
        sort_dedup(&mut ysplits);
        for &x in &xsplits {
            assert!(
                x > bounds.min.x && x < bounds.max.x,
                "x-split {x} outside open bounds ({}, {})",
                bounds.min.x,
                bounds.max.x
            );
        }
        for &y in &ysplits {
            assert!(
                y > bounds.min.y && y < bounds.max.y,
                "y-split {y} outside open bounds ({}, {})",
                bounds.min.y,
                bounds.max.y
            );
        }
        Partitioning {
            bounds,
            xsplits,
            ysplits,
        }
    }

    /// Creates a regular `nx × ny` grid partitioning (equally spaced
    /// splits), e.g. the paper's `100×50`, `25×12` and `20×20` grids.
    pub fn regular(bounds: Rect, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "partition counts must be positive");
        let xs = (1..nx)
            .map(|i| bounds.min.x + bounds.width() * i as f64 / nx as f64)
            .collect();
        let ys = (1..ny)
            .map(|j| bounds.min.y + bounds.height() * j as f64 / ny as f64)
            .collect();
        Partitioning {
            bounds,
            xsplits: xs,
            ysplits: ys,
        }
    }

    /// Draws a random *regular* partitioning: the number of splits per
    /// axis is uniform in `config`, and the splits are equally spaced.
    ///
    /// This is the reading of the paper's §4.2 setup ("the number of
    /// horizontal and vertical splits of the space is randomly selected
    /// between 10 to 40") that reproduces the reported `MeanVar` values
    /// — the randomness is in the *resolution*, not the split
    /// positions. See [`Partitioning::random`] for the
    /// random-positions variant.
    pub fn random_regular<R: Rng + ?Sized>(
        bounds: Rect,
        config: &RandomPartitioningConfig,
        rng: &mut R,
    ) -> Self {
        let nx_splits = rng.gen_range(config.min_splits..=config.max_splits);
        let ny_splits = rng.gen_range(config.min_splits..=config.max_splits);
        Self::regular(bounds, nx_splits + 1, ny_splits + 1)
    }

    /// Draws a random partitioning: the number of splits per axis is
    /// uniform in `config.splits`, and each split coordinate is uniform
    /// inside the bounds (duplicates removed).
    pub fn random<R: Rng + ?Sized>(
        bounds: Rect,
        config: &RandomPartitioningConfig,
        rng: &mut R,
    ) -> Self {
        let nx = rng.gen_range(config.min_splits..=config.max_splits);
        let ny = rng.gen_range(config.min_splits..=config.max_splits);
        let mut xs: Vec<f64> = (0..nx)
            .map(|_| rng.gen_range(bounds.min.x..bounds.max.x))
            .filter(|&x| x > bounds.min.x && x < bounds.max.x)
            .collect();
        let mut ys: Vec<f64> = (0..ny)
            .map(|_| rng.gen_range(bounds.min.y..bounds.max.y))
            .filter(|&y| y > bounds.min.y && y < bounds.max.y)
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("uniform draws are never NaN"));
        xs.dedup();
        ys.sort_by(|a, b| a.partial_cmp(b).expect("uniform draws are never NaN"));
        ys.dedup();
        Partitioning {
            bounds,
            xsplits: xs,
            ysplits: ys,
        }
    }

    /// The partitioning bounds.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Number of columns (`x`-intervals).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.xsplits.len() + 1
    }

    /// Number of rows (`y`-intervals).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.ysplits.len() + 1
    }

    /// Total number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.ncols() * self.nrows()
    }

    /// Maps a point to its partition id in `[0, num_partitions)`.
    ///
    /// Points outside the bounds are clamped to border partitions, so
    /// the mapping is total.
    #[inline]
    pub fn partition_of(&self, p: &Point) -> usize {
        let col = interval_index(&self.xsplits, p.x);
        let row = interval_index(&self.ysplits, p.y);
        row * self.ncols() + col
    }

    /// The rectangle of partition `id`.
    pub fn partition_rect(&self, id: usize) -> Rect {
        assert!(id < self.num_partitions(), "partition id {id} out of range");
        let col = id % self.ncols();
        let row = id / self.ncols();
        let x0 = if col == 0 {
            self.bounds.min.x
        } else {
            self.xsplits[col - 1]
        };
        let x1 = if col == self.xsplits.len() {
            self.bounds.max.x
        } else {
            self.xsplits[col]
        };
        let y0 = if row == 0 {
            self.bounds.min.y
        } else {
            self.ysplits[row - 1]
        };
        let y1 = if row == self.ysplits.len() {
            self.bounds.max.y
        } else {
            self.ysplits[row]
        };
        Rect::from_coords(x0, y0, x1, y1)
    }

    /// Iterates over `(id, rect)` for all partitions.
    pub fn iter_partitions(&self) -> impl Iterator<Item = (usize, Rect)> + '_ {
        (0..self.num_partitions()).map(move |id| (id, self.partition_rect(id)))
    }

    /// Assigns every point in `points` to its partition id.
    pub fn assign(&self, points: &[Point]) -> Vec<u32> {
        points.iter().map(|p| self.partition_of(p) as u32).collect()
    }
}

/// Parameters for [`Partitioning::random`].
///
/// The paper's §4.2 setup is `min_splits = 10`, `max_splits = 40`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomPartitioningConfig {
    /// Minimum number of splits per axis (inclusive).
    pub min_splits: usize,
    /// Maximum number of splits per axis (inclusive).
    pub max_splits: usize,
}

impl RandomPartitioningConfig {
    /// The paper's §4.2 configuration: 10 to 40 splits per axis.
    pub const PAPER: RandomPartitioningConfig = RandomPartitioningConfig {
        min_splits: 10,
        max_splits: 40,
    };
}

impl Default for RandomPartitioningConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Index of the half-open interval `[s_{i-1}, s_i)` that `v` falls in,
/// over sorted splits `s`; `0` before the first split, `s.len()` after
/// the last. Equivalent to "number of splits ≤ v".
#[inline]
fn interval_index(splits: &[f64], v: f64) -> usize {
    // partition_point returns the first index where the predicate fails,
    // i.e. the count of splits <= v, which is exactly the interval index.
    splits.partition_point(|&s| s <= v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bounds() -> Rect {
        Rect::from_coords(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn interval_index_basics() {
        let s = [2.0, 5.0, 7.0];
        assert_eq!(interval_index(&s, 0.0), 0);
        assert_eq!(interval_index(&s, 1.99), 0);
        assert_eq!(interval_index(&s, 2.0), 1); // boundary goes right
        assert_eq!(interval_index(&s, 6.0), 2);
        assert_eq!(interval_index(&s, 7.0), 3);
        assert_eq!(interval_index(&s, 100.0), 3);
    }

    #[test]
    fn regular_counts() {
        let p = Partitioning::regular(bounds(), 4, 2);
        assert_eq!(p.ncols(), 4);
        assert_eq!(p.nrows(), 2);
        assert_eq!(p.num_partitions(), 8);
    }

    #[test]
    fn partition_rects_tile_bounds() {
        let p = Partitioning::regular(bounds(), 5, 3);
        let total: f64 = p.iter_partitions().map(|(_, r)| r.area()).sum();
        assert!((total - p.bounds().area()).abs() < 1e-9);
    }

    #[test]
    fn each_point_maps_to_the_partition_containing_it() {
        let p = Partitioning::from_splits(bounds(), vec![3.0, 6.0], vec![5.0]);
        for (id, r) in p.iter_partitions() {
            let c = r.center();
            assert_eq!(p.partition_of(&c), id, "center of {r} should map to {id}");
            assert!(r.contains(&c));
        }
    }

    #[test]
    fn mapping_is_total_and_non_overlapping() {
        // Every point maps to exactly one partition by construction;
        // check that boundary points are assigned consistently with the
        // half-open convention (they go to the right/upper partition).
        let p = Partitioning::from_splits(bounds(), vec![5.0], vec![5.0]);
        assert_eq!(p.partition_of(&Point::new(4.999, 4.999)), 0);
        assert_eq!(p.partition_of(&Point::new(5.0, 4.999)), 1);
        assert_eq!(p.partition_of(&Point::new(4.999, 5.0)), 2);
        assert_eq!(p.partition_of(&Point::new(5.0, 5.0)), 3);
    }

    #[test]
    fn outside_points_clamp() {
        let p = Partitioning::from_splits(bounds(), vec![5.0], vec![5.0]);
        assert_eq!(p.partition_of(&Point::new(-100.0, -100.0)), 0);
        assert_eq!(p.partition_of(&Point::new(100.0, 100.0)), 3);
    }

    #[test]
    fn from_splits_sorts_and_dedups() {
        let p = Partitioning::from_splits(bounds(), vec![7.0, 3.0, 7.0], vec![]);
        assert_eq!(p.ncols(), 3);
        assert_eq!(p.nrows(), 1);
        assert_eq!(p.partition_rect(0), Rect::from_coords(0.0, 0.0, 3.0, 10.0));
        assert_eq!(p.partition_rect(2), Rect::from_coords(7.0, 0.0, 10.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "outside open bounds")]
    fn split_on_boundary_rejected() {
        let _ = Partitioning::from_splits(bounds(), vec![0.0], vec![]);
    }

    #[test]
    fn random_respects_config() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let cfg = RandomPartitioningConfig {
            min_splits: 10,
            max_splits: 40,
        };
        for _ in 0..20 {
            let p = Partitioning::random(bounds(), &cfg, &mut rng);
            assert!(p.ncols() >= 2 && p.ncols() <= 41);
            assert!(p.nrows() >= 2 && p.nrows() <= 41);
            // All splits interior.
            let total: f64 = p.iter_partitions().map(|(_, r)| r.area()).sum();
            assert!((total - p.bounds().area()).abs() < 1e-9);
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let cfg = RandomPartitioningConfig::PAPER;
        let a = Partitioning::random(bounds(), &cfg, &mut ChaCha8Rng::seed_from_u64(3));
        let b = Partitioning::random(bounds(), &cfg, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn assign_matches_partition_of() {
        let p = Partitioning::regular(bounds(), 3, 3);
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(9.0, 9.0),
            Point::new(5.0, 5.0),
        ];
        let ids = p.assign(&pts);
        for (pt, id) in pts.iter().zip(&ids) {
            assert_eq!(p.partition_of(pt) as u32, *id);
        }
    }
}
