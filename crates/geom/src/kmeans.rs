//! Seeded k-means (k-means++ initialisation + Lloyd iterations).

use crate::point::Point;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total center movement (squared).
    pub tol: f64,
    /// RNG seed (k-means++ sampling and empty-cluster reseeding).
    pub seed: u64,
}

impl KMeansConfig {
    /// Creates a config with sensible defaults (`max_iters = 100`,
    /// `tol = 1e-10`).
    pub fn new(k: usize, seed: u64) -> Self {
        KMeansConfig {
            k,
            max_iters: 100,
            tol: 1e-10,
            seed,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Cluster centers (length ≤ `k`; less when there are fewer
    /// distinct points than clusters).
    pub centers: Vec<Point>,
    /// Per-point cluster assignment (indices into `centers`).
    pub assignments: Vec<u32>,
    /// Sum of squared distances of points to their centers.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeans {
    /// Runs k-means on `points`.
    ///
    /// Deterministic for a given `(points, config)`. If `k >= points`
    /// every distinct point becomes its own center.
    ///
    /// # Panics
    /// Panics if `k == 0` or `points` is empty.
    pub fn fit(points: &[Point], config: &KMeansConfig) -> KMeans {
        assert!(config.k > 0, "k must be positive");
        assert!(!points.is_empty(), "cannot cluster an empty point set");
        let k = config.k.min(points.len());
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut centers = plus_plus_init(points, k, &mut rng);
        let mut assignments = vec![0u32; points.len()];
        let mut iterations = 0;
        let mut inertia = f64::INFINITY;
        for iter in 0..config.max_iters {
            iterations = iter + 1;
            // Assignment step.
            inertia = 0.0;
            for (i, p) in points.iter().enumerate() {
                let (best, d) = nearest(&centers, p);
                assignments[i] = best as u32;
                inertia += d;
            }
            // Update step.
            let mut sums = vec![(0.0f64, 0.0f64, 0usize); centers.len()];
            for (i, p) in points.iter().enumerate() {
                let a = assignments[i] as usize;
                sums[a].0 += p.x;
                sums[a].1 += p.y;
                sums[a].2 += 1;
            }
            let mut movement = 0.0;
            for (c, center) in centers.iter_mut().enumerate() {
                let (sx, sy, cnt) = sums[c];
                let new = if cnt == 0 {
                    // Empty cluster: reseed at the point farthest from
                    // its current center (standard remedy; keeps k).
                    let far = points
                        .iter()
                        .max_by(|a, b| {
                            let da = nearest(&[*center], a).1;
                            let db = nearest(&[*center], b).1;
                            da.partial_cmp(&db).expect("finite distances")
                        })
                        .copied()
                        .unwrap_or(*center);
                    let _ = rng.gen::<u64>(); // keep the RNG stream stable
                    far
                } else {
                    Point::new(sx / cnt as f64, sy / cnt as f64)
                };
                movement += center.distance_sq(&new);
                *center = new;
            }
            if movement <= config.tol {
                break;
            }
        }
        // Final assignment for the converged centers.
        let mut final_inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (best, d) = nearest(&centers, p);
            assignments[i] = best as u32;
            final_inertia += d;
        }
        inertia = final_inertia.min(inertia);
        KMeans {
            centers,
            assignments,
            inertia,
            iterations,
        }
    }

    /// Number of clusters actually used.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Per-cluster point counts.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centers.len()];
        for &a in &self.assignments {
            sizes[a as usize] += 1;
        }
        sizes
    }
}

/// Index of and squared distance to the nearest center.
fn nearest(centers: &[Point], p: &Point) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = c.distance_sq(p);
        if d < best_d {
            best = i;
            best_d = d;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first center uniform, then each next center
/// sampled with probability proportional to its squared distance to the
/// nearest chosen center.
fn plus_plus_init(points: &[Point], k: usize, rng: &mut ChaCha8Rng) -> Vec<Point> {
    let mut centers = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())]);
    let mut d2: Vec<f64> = points.iter().map(|p| centers[0].distance_sq(p)).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with existing centers;
            // further centers add nothing but keep `k` stable.
            points[rng.gen_range(0..points.len())]
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            points[chosen]
        };
        centers.push(next);
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(next.distance_sq(p));
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Point> {
        let mut pts = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (5.0, 10.0)];
        let mut rng_state = 1u64;
        let mut next = || {
            // Tiny xorshift for offsets; determinism without rand here.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % 1000) as f64 / 1000.0 - 0.5
        };
        for &(cx, cy) in &centers {
            for _ in 0..50 {
                pts.push(Point::new(cx + next(), cy + next()));
            }
        }
        pts
    }

    #[test]
    fn recovers_separated_blobs() {
        let pts = three_blobs();
        let km = KMeans::fit(&pts, &KMeansConfig::new(3, 42));
        assert_eq!(km.k(), 3);
        // Each true blob center must be close to some fitted center.
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 0.0), (5.0, 10.0)] {
            let target = Point::new(cx, cy);
            let nearest = km
                .centers
                .iter()
                .map(|c| c.distance(&target))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1.0, "no center near ({cx},{cy}): {nearest}");
        }
        // Balanced sizes.
        for s in km.cluster_sizes() {
            assert_eq!(s, 50);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = three_blobs();
        let a = KMeans::fit(&pts, &KMeansConfig::new(3, 7));
        let b = KMeans::fit(&pts, &KMeansConfig::new(3, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn k_one_yields_centroid() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 3.0),
        ];
        let km = KMeans::fit(&pts, &KMeansConfig::new(1, 1));
        assert_eq!(km.k(), 1);
        assert!((km.centers[0].x - 1.0).abs() < 1e-9);
        assert!((km.centers[0].y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0)];
        let km = KMeans::fit(&pts, &KMeansConfig::new(10, 1));
        assert_eq!(km.k(), 2);
        assert!(km.inertia < 1e-12);
    }

    #[test]
    fn identical_points_converge() {
        let pts = vec![Point::new(3.0, 3.0); 20];
        let km = KMeans::fit(&pts, &KMeansConfig::new(4, 9));
        assert!(km.inertia < 1e-12);
        for c in &km.centers {
            assert_eq!(*c, Point::new(3.0, 3.0));
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = three_blobs();
        let k1 = KMeans::fit(&pts, &KMeansConfig::new(1, 5)).inertia;
        let k3 = KMeans::fit(&pts, &KMeansConfig::new(3, 5)).inertia;
        let k10 = KMeans::fit(&pts, &KMeansConfig::new(10, 5)).inertia;
        assert!(
            k3 < k1 * 0.2,
            "k=3 should explain blob structure: {k3} vs {k1}"
        );
        assert!(k10 <= k3 + 1e-9);
    }

    #[test]
    fn assignments_point_to_nearest_center() {
        let pts = three_blobs();
        let km = KMeans::fit(&pts, &KMeansConfig::new(3, 11));
        for (i, p) in pts.iter().enumerate() {
            let assigned = km.assignments[i] as usize;
            let d_assigned = km.centers[assigned].distance_sq(p);
            for c in &km.centers {
                assert!(c.distance_sq(p) >= d_assigned - 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_points_rejected() {
        let _ = KMeans::fit(&[], &KMeansConfig::new(2, 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_rejected() {
        let _ = KMeans::fit(
            &[Point::ORIGIN],
            &KMeansConfig {
                k: 0,
                ..KMeansConfig::new(1, 1)
            },
        );
    }
}
