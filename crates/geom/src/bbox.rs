//! Bounding-box computation over point sets.

use crate::{point::Point, rect::Rect};

/// Incremental bounding-box builder.
///
/// Collects points (or rectangles) and yields the tightest enclosing
/// [`Rect`]. Empty builders yield `None`.
#[derive(Debug, Clone, Default)]
pub struct BoundingBox {
    rect: Option<Rect>,
}

impl BoundingBox {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extends the box to cover `p`.
    pub fn add_point(&mut self, p: &Point) {
        self.rect = Some(match self.rect {
            None => Rect { min: *p, max: *p },
            Some(r) => Rect {
                min: r.min.min(p),
                max: r.max.max(p),
            },
        });
    }

    /// Extends the box to cover `r`.
    pub fn add_rect(&mut self, r: &Rect) {
        self.rect = Some(match self.rect {
            None => *r,
            Some(cur) => cur.union(r),
        });
    }

    /// The tightest rectangle covering everything added, if anything was.
    pub fn build(&self) -> Option<Rect> {
        self.rect
    }

    /// Computes the bounding box of a point slice (`None` when empty).
    pub fn of_points(points: &[Point]) -> Option<Rect> {
        let mut b = BoundingBox::new();
        for p in points {
            b.add_point(p);
        }
        b.build()
    }

    /// Computes the bounding box of a point slice, expanded by a small
    /// relative margin so that every point is strictly interior.
    ///
    /// Grids and partitionings built on an exact bounding box would put
    /// extreme points exactly on the outer boundary; the expansion makes
    /// cell assignment unambiguous without affecting geometry in any
    /// meaningful way. `rel_margin` is relative to each side length
    /// (with an absolute floor for degenerate extents).
    pub fn of_points_expanded(points: &[Point], rel_margin: f64) -> Option<Rect> {
        let r = Self::of_points(points)?;
        let mx = (r.width() * rel_margin).max(1e-9);
        let my = (r.height() * rel_margin).max(1e-9);
        Some(Rect {
            min: Point::new(r.min.x - mx, r.min.y - my),
            max: Point::new(r.max.x + mx, r.max.y + my),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_yields_none() {
        assert!(BoundingBox::new().build().is_none());
        assert!(BoundingBox::of_points(&[]).is_none());
    }

    #[test]
    fn single_point_box_is_degenerate() {
        let r = BoundingBox::of_points(&[Point::new(1.0, 2.0)]).unwrap();
        assert_eq!(r.min, Point::new(1.0, 2.0));
        assert_eq!(r.max, Point::new(1.0, 2.0));
    }

    #[test]
    fn covers_all_points() {
        let pts = [
            Point::new(0.0, 5.0),
            Point::new(-2.0, 1.0),
            Point::new(3.0, -4.0),
        ];
        let r = BoundingBox::of_points(&pts).unwrap();
        assert_eq!(r, Rect::from_coords(-2.0, -4.0, 3.0, 5.0));
        for p in &pts {
            assert!(r.contains(p));
        }
    }

    #[test]
    fn add_rect_unions() {
        let mut b = BoundingBox::new();
        b.add_rect(&Rect::from_coords(0.0, 0.0, 1.0, 1.0));
        b.add_rect(&Rect::from_coords(2.0, -1.0, 3.0, 0.5));
        assert_eq!(b.build().unwrap(), Rect::from_coords(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn expanded_box_strictly_contains_points() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let r = BoundingBox::of_points_expanded(&pts, 1e-6).unwrap();
        for p in &pts {
            assert!(p.x > r.min.x && p.x < r.max.x);
            assert!(p.y > r.min.y && p.y < r.max.y);
        }
    }

    #[test]
    fn expanded_box_handles_degenerate_extent() {
        // All points on a vertical line: width == 0, margin must still
        // make the points interior.
        let pts = [Point::new(2.0, 0.0), Point::new(2.0, 5.0)];
        let r = BoundingBox::of_points_expanded(&pts, 0.01).unwrap();
        assert!(r.width() > 0.0);
        assert!(pts.iter().all(|p| p.x > r.min.x && p.x < r.max.x));
    }
}
