//! Geometry substrate for spatial-fairness auditing.
//!
//! This crate provides the geometric vocabulary used throughout the
//! workspace:
//!
//! * [`Point`] — a 2-D location (by convention `x` = longitude, `y` =
//!   latitude, but nothing in the crate assumes geographic coordinates).
//! * [`Rect`] — an axis-aligned rectangle, the shape of grid partitions
//!   and of the square scan regions of the paper's §4.3.
//! * [`Circle`] — circular scan regions (Kulldorff's classic shape,
//!   provided as an extension).
//! * [`ConvexPolygon`] — convex district-style scan regions with an
//!   exact separating-axis rectangle test (extension).
//! * [`Region`] — a closed enum over the supported scan-region shapes.
//! * [`BoundingBox`] — helpers to compute the extent of a point set.
//! * [`UniformGrid`] — a regular `nx × ny` grid over a bounding box with
//!   clamped point-to-cell mapping.
//! * [`Partitioning`] — a rectangular partitioning of space defined by
//!   sorted split coordinates, including the random-split generator used
//!   by the paper's `MeanVar` experiments (100 partitionings with 10–40
//!   splits per axis).
//!
//! # Containment conventions
//!
//! Scan regions ([`Rect::contains`], [`Circle::contains`]) use *closed*
//! containment (boundary points belong to the region). Partitionings and
//! grids never test containment directly; they map a point to exactly one
//! cell via interval arithmetic (`[s_i, s_{i+1})`, last interval closed),
//! which guarantees the non-overlap + full-coverage property that the
//! paper's partitioning-based definitions rely on.
//!
//! # Example
//!
//! ```rust
//! use sfgeo::{Partitioning, Point, Rect};
//!
//! let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
//! // The paper's grid partitionings are regular:
//! let grid = Partitioning::regular(bounds, 4, 2);
//! assert_eq!(grid.num_partitions(), 8);
//! // Every point maps to exactly one partition:
//! let id = grid.partition_of(&Point::new(3.0, 7.0));
//! assert!(grid.partition_rect(id).contains(&Point::new(3.0, 7.0)));
//! ```

pub mod bbox;
pub mod circle;
pub mod grid;
pub mod haversine;
pub mod kmeans;
pub mod partition;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod region;

pub use bbox::BoundingBox;
pub use circle::Circle;
pub use grid::UniformGrid;
pub use kmeans::{KMeans, KMeansConfig};
pub use partition::{Partitioning, RandomPartitioningConfig};
pub use point::Point;
pub use polygon::ConvexPolygon;
pub use rect::Rect;
pub use region::Region;
