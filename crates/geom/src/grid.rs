//! Regular grids over a bounding box.

use crate::{point::Point, rect::Rect};
use serde::{Deserialize, Serialize};

/// A regular `nx × ny` grid over a bounding rectangle.
///
/// The grid maps every point of the plane to exactly one cell: interior
/// points by interval arithmetic, exterior points clamped to the nearest
/// border cell. Cell `(ix, iy)` covers
/// `[min.x + ix·w, min.x + (ix+1)·w) × [min.y + iy·h, min.y + (iy+1)·h)`
/// with the last row/column closed, so cells tile the box without
/// overlap.
///
/// This is the "high-resolution grid" of the `MeanVar` baseline and the
/// `100×50`, `25×12`, `20×20` partitionings of the paper's §4.2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformGrid {
    bounds: Rect,
    nx: usize,
    ny: usize,
}

impl UniformGrid {
    /// Creates a grid with `nx` columns and `ny` rows over `bounds`.
    ///
    /// # Panics
    /// Panics if `nx` or `ny` is zero, or `bounds` has non-positive area.
    pub fn new(bounds: Rect, nx: usize, ny: usize) -> Self {
        assert!(
            nx > 0 && ny > 0,
            "grid dimensions must be positive, got {nx}x{ny}"
        );
        assert!(
            bounds.width() > 0.0 && bounds.height() > 0.0,
            "grid bounds must have positive extent, got {bounds}"
        );
        UniformGrid { bounds, nx, ny }
    }

    /// The grid's bounding rectangle.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Number of columns.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Cell width.
    #[inline]
    pub fn cell_width(&self) -> f64 {
        self.bounds.width() / self.nx as f64
    }

    /// Cell height.
    #[inline]
    pub fn cell_height(&self) -> f64 {
        self.bounds.height() / self.ny as f64
    }

    /// Maps a point to its `(ix, iy)` cell coordinates, clamped to the
    /// grid so that every point of the plane gets a cell.
    #[inline]
    pub fn cell_of(&self, p: &Point) -> (usize, usize) {
        let fx = (p.x - self.bounds.min.x) / self.cell_width();
        let fy = (p.y - self.bounds.min.y) / self.cell_height();
        let ix = (fx.floor() as isize).clamp(0, self.nx as isize - 1) as usize;
        let iy = (fy.floor() as isize).clamp(0, self.ny as isize - 1) as usize;
        (ix, iy)
    }

    /// Maps a point to its flat cell index (`iy * nx + ix`).
    #[inline]
    pub fn cell_index_of(&self, p: &Point) -> usize {
        let (ix, iy) = self.cell_of(p);
        self.flat_index(ix, iy)
    }

    /// Converts `(ix, iy)` to a flat index.
    #[inline]
    pub fn flat_index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// Converts a flat index back to `(ix, iy)`.
    #[inline]
    pub fn cell_coords(&self, flat: usize) -> (usize, usize) {
        debug_assert!(flat < self.num_cells());
        (flat % self.nx, flat / self.nx)
    }

    /// The rectangle covered by cell `(ix, iy)`.
    pub fn cell_rect(&self, ix: usize, iy: usize) -> Rect {
        assert!(
            ix < self.nx && iy < self.ny,
            "cell ({ix},{iy}) out of bounds"
        );
        let w = self.cell_width();
        let h = self.cell_height();
        Rect::from_coords(
            self.bounds.min.x + ix as f64 * w,
            self.bounds.min.y + iy as f64 * h,
            self.bounds.min.x + (ix + 1) as f64 * w,
            self.bounds.min.y + (iy + 1) as f64 * h,
        )
    }

    /// The rectangle covered by a flat cell index.
    pub fn cell_rect_flat(&self, flat: usize) -> Rect {
        let (ix, iy) = self.cell_coords(flat);
        self.cell_rect(ix, iy)
    }

    /// The inclusive range of cells whose rectangles intersect `r`,
    /// clamped to the grid; `None` if `r` is disjoint from the bounds.
    pub fn cell_range(&self, r: &Rect) -> Option<(usize, usize, usize, usize)> {
        if !self.bounds.intersects(r) {
            return None;
        }
        let (ix0, iy0) = self.cell_of(&r.min);
        let (ix1, iy1) = self.cell_of(&r.max);
        Some((ix0, iy0, ix1, iy1))
    }

    /// Iterates over all cell rectangles in flat-index order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, Rect)> + '_ {
        (0..self.num_cells()).map(move |i| (i, self.cell_rect_flat(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> UniformGrid {
        UniformGrid::new(Rect::from_coords(0.0, 0.0, 10.0, 5.0), 10, 5)
    }

    #[test]
    fn dims_and_cell_sizes() {
        let g = grid();
        assert_eq!(g.num_cells(), 50);
        assert_eq!(g.cell_width(), 1.0);
        assert_eq!(g.cell_height(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        let _ = UniformGrid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 0, 5);
    }

    #[test]
    fn interior_points_map_by_floor() {
        let g = grid();
        assert_eq!(g.cell_of(&Point::new(0.5, 0.5)), (0, 0));
        assert_eq!(g.cell_of(&Point::new(9.99, 4.99)), (9, 4));
        assert_eq!(g.cell_of(&Point::new(3.0, 2.0)), (3, 2)); // boundary goes right/up
    }

    #[test]
    fn outside_points_clamp_to_border_cells() {
        let g = grid();
        assert_eq!(g.cell_of(&Point::new(-5.0, -5.0)), (0, 0));
        assert_eq!(g.cell_of(&Point::new(50.0, 50.0)), (9, 4));
        assert_eq!(g.cell_of(&Point::new(10.0, 5.0)), (9, 4)); // max corner
    }

    #[test]
    fn flat_index_roundtrip() {
        let g = grid();
        for iy in 0..g.ny() {
            for ix in 0..g.nx() {
                let flat = g.flat_index(ix, iy);
                assert_eq!(g.cell_coords(flat), (ix, iy));
            }
        }
    }

    #[test]
    fn cell_rects_tile_bounds() {
        let g = grid();
        let total: f64 = g.iter_cells().map(|(_, r)| r.area()).sum();
        assert!((total - g.bounds().area()).abs() < 1e-9);
    }

    #[test]
    fn every_cell_rect_contains_its_center_and_maps_back() {
        let g = grid();
        for (i, r) in g.iter_cells() {
            let c = r.center();
            assert!(r.contains(&c));
            assert_eq!(g.cell_index_of(&c), i);
        }
    }

    #[test]
    fn cell_range_clamps() {
        let g = grid();
        let r = Rect::from_coords(2.5, 1.5, 4.5, 3.5);
        assert_eq!(g.cell_range(&r), Some((2, 1, 4, 3)));
        let outside = Rect::from_coords(100.0, 100.0, 101.0, 101.0);
        assert_eq!(g.cell_range(&outside), None);
        let huge = Rect::from_coords(-100.0, -100.0, 100.0, 100.0);
        assert_eq!(g.cell_range(&huge), Some((0, 0, 9, 4)));
    }

    #[test]
    fn non_square_cells() {
        let g = UniformGrid::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 4, 2);
        assert_eq!(g.cell_width(), 0.25);
        assert_eq!(g.cell_height(), 0.5);
        assert_eq!(g.cell_of(&Point::new(0.3, 0.6)), (1, 1));
    }
}
