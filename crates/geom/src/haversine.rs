//! Great-circle distances for geographic coordinates.
//!
//! The paper reasons about region sizes in degrees ("side lengths
//! ranging from 0.1 up to 2 degrees (roughly 10 to 200 kilometers)").
//! These helpers convert between the two views for reporting.

use crate::point::Point;

/// Mean Earth radius in kilometers (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle (haversine) distance in kilometers between two
/// `(longitude, latitude)` points given in degrees.
pub fn haversine_km(a: &Point, b: &Point) -> f64 {
    let lat1 = a.y.to_radians();
    let lat2 = b.y.to_radians();
    let dlat = (b.y - a.y).to_radians();
    let dlon = (b.x - a.x).to_radians();
    let s = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * s.sqrt().asin()
}

/// Approximate kilometers spanned by one degree of latitude.
pub fn km_per_degree_lat() -> f64 {
    EARTH_RADIUS_KM * std::f64::consts::PI / 180.0
}

/// Approximate kilometers spanned by one degree of longitude at the
/// given latitude (degrees).
pub fn km_per_degree_lon(lat_deg: f64) -> f64 {
    km_per_degree_lat() * lat_deg.to_radians().cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        let p = Point::new(-118.24, 34.05);
        assert_eq!(haversine_km(&p, &p), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = Point::new(-118.24, 34.05); // Los Angeles
        let b = Point::new(-122.42, 37.77); // San Francisco
        assert!((haversine_km(&a, &b) - haversine_km(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn la_to_sf_is_about_560_km() {
        let a = Point::new(-118.24, 34.05);
        let b = Point::new(-122.42, 37.77);
        let d = haversine_km(&a, &b);
        assert!((d - 559.0).abs() < 15.0, "got {d}");
    }

    #[test]
    fn one_degree_latitude_is_about_111_km() {
        let k = km_per_degree_lat();
        assert!((k - 111.2).abs() < 0.5, "got {k}");
        // Matches the paper's "0.1 up to 2 degrees (roughly 10 to 200 km)".
        assert!((0.1 * k - 11.1).abs() < 0.5);
        assert!((2.0 * k - 222.4).abs() < 1.0);
    }

    #[test]
    fn longitude_degrees_shrink_with_latitude() {
        assert!(km_per_degree_lon(0.0) > km_per_degree_lon(45.0));
        assert!(km_per_degree_lon(45.0) > km_per_degree_lon(80.0));
        assert!((km_per_degree_lon(0.0) - km_per_degree_lat()).abs() < 1e-9);
    }

    #[test]
    fn haversine_matches_small_angle_approximation() {
        // For tiny separations the flat approximation should agree.
        let a = Point::new(10.0, 50.0);
        let b = Point::new(10.0, 50.001);
        let d = haversine_km(&a, &b);
        assert!((d - 0.001 * km_per_degree_lat()).abs() < 1e-6);
    }
}
