//! Axis-aligned rectangles.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle, stored as its min and max corners.
///
/// Rectangles are *closed*: boundary points are contained. This is the
/// natural semantics for scan regions (the paper's square regions of
/// §4.3 and grid partitions treated as standalone regions). Exhaustive
/// partitionings do not use `contains` — see [`crate::Partitioning`].
///
/// Invariant: `min.x <= max.x && min.y <= max.y`. Construction through
/// [`Rect::new`] sorts the corners to maintain it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two arbitrary corners (sorted internally).
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// Creates a rectangle from raw coordinates `(x0, y0)`–`(x1, y1)`.
    #[inline]
    pub fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// Creates the axis-aligned square of side `side` centered at `center`.
    ///
    /// This is the construction of the paper's §4.3 scan regions
    /// ("square regions with 20 different side lengths ranging from 0.1
    /// up to 2 degrees" centered on k-means centers).
    #[inline]
    pub fn square(center: Point, side: f64) -> Self {
        assert!(side >= 0.0, "square side must be non-negative, got {side}");
        let h = side / 2.0;
        Rect {
            min: Point::new(center.x - h, center.y - h),
            max: Point::new(center.x + h, center.y + h),
        }
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area (width × height).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` if `other` lies entirely inside `self` (closed).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// Returns `true` if the two rectangles share at least one point
    /// (closed semantics: touching edges intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The intersection rectangle, or `None` if disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        })
    }

    /// The smallest rectangle covering both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Grows the rectangle by `margin` on every side.
    #[inline]
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Squared Euclidean distance from `p` to the rectangle (0 inside).
    ///
    /// Used by spatial indexes for pruning circle queries.
    #[inline]
    pub fn distance_sq_to_point(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// The farthest squared distance from `p` to any point of the rectangle.
    #[inline]
    pub fn max_distance_sq_to_point(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.4}, {:.4}] x [{:.4}, {:.4}]",
            self.min.x, self.max.x, self.min.y, self.max.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::from_coords(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn new_sorts_corners() {
        let r = Rect::new(Point::new(2.0, -1.0), Point::new(-3.0, 4.0));
        assert_eq!(r.min, Point::new(-3.0, -1.0));
        assert_eq!(r.max, Point::new(2.0, 4.0));
    }

    #[test]
    fn square_has_expected_extent() {
        let r = Rect::square(Point::new(1.0, 2.0), 0.5);
        assert_eq!(r.min, Point::new(0.75, 1.75));
        assert_eq!(r.max, Point::new(1.25, 2.25));
        assert!((r.area() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn square_rejects_negative_side() {
        let _ = Rect::square(Point::ORIGIN, -1.0);
    }

    #[test]
    fn contains_is_closed() {
        let r = unit();
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(!r.contains(&Point::new(1.0 + 1e-12, 0.5)));
        assert!(!r.contains(&Point::new(0.5, -1e-12)));
    }

    #[test]
    fn intersects_touching_edges() {
        let a = unit();
        let b = Rect::from_coords(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        let c = Rect::from_coords(1.1, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = unit();
        let b = Rect::from_coords(0.5, 0.5, 2.0, 2.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::from_coords(0.5, 0.5, 1.0, 1.0));
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let a = unit();
        let b = Rect::from_coords(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn union_covers_both() {
        let a = unit();
        let b = Rect::from_coords(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::from_coords(0.0, 0.0, 3.0, 3.0));
    }

    #[test]
    fn contains_rect_cases() {
        let a = unit();
        assert!(a.contains_rect(&Rect::from_coords(0.25, 0.25, 0.75, 0.75)));
        assert!(a.contains_rect(&a));
        assert!(!a.contains_rect(&Rect::from_coords(0.5, 0.5, 1.5, 0.75)));
    }

    #[test]
    fn expanded_grows_all_sides() {
        let r = unit().expanded(0.5);
        assert_eq!(r, Rect::from_coords(-0.5, -0.5, 1.5, 1.5));
    }

    #[test]
    fn point_distance_inside_is_zero() {
        let r = unit();
        assert_eq!(r.distance_sq_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(r.distance_sq_to_point(&Point::new(0.0, 1.0)), 0.0);
    }

    #[test]
    fn point_distance_outside() {
        let r = unit();
        // Directly right of the rectangle.
        assert_eq!(r.distance_sq_to_point(&Point::new(2.0, 0.5)), 1.0);
        // Diagonal from the corner.
        assert_eq!(r.distance_sq_to_point(&Point::new(2.0, 2.0)), 2.0);
    }

    #[test]
    fn max_distance_reaches_far_corner() {
        let r = unit();
        assert_eq!(r.max_distance_sq_to_point(&Point::new(0.0, 0.0)), 2.0);
        assert_eq!(r.max_distance_sq_to_point(&Point::new(-1.0, 0.0)), 5.0);
    }

    #[test]
    fn degenerate_rect_contains_its_point() {
        let r = Rect::from_coords(1.0, 1.0, 1.0, 1.0);
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert_eq!(r.area(), 0.0);
    }
}
